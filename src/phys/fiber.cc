#include "fiber.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace nectar::phys {

FiberLink::FiberLink(sim::EventQueue &eq, std::string name,
                     Tick propDelay, Tick byteTime)
    : sim::Component(eq, std::move(name)), propDelay(propDelay),
      byteTime(byteTime), rng(0)
{
    if (byteTime <= 0)
        sim::fatal("FiberLink: byteTime must be positive");
    if (propDelay < 0)
        sim::fatal("FiberLink: negative propagation delay");
}

void
FiberLink::setFaults(const FaultModel &model, std::uint64_t seed)
{
    faults = model;
    rng = sim::Random(seed);
    faultsEnabled = model.any();
}

bool
FiberLink::applyFaults(WireItem &item)
{
    if (!faultsEnabled)
        return true;
    switch (item.kind) {
      case ItemKind::command:
        if (rng.chance(faults.dropCommand)) {
            ++_itemsDropped;
            return false;
        }
        break;
      case ItemKind::reply:
      case ItemKind::readySignal:
        if (rng.chance(faults.dropReply)) {
            ++_itemsDropped;
            return false;
        }
        break;
      case ItemKind::data:
        if (rng.chance(faults.dropData)) {
            ++_itemsDropped;
            return false;
        }
        if (rng.chance(faults.corruptData)) {
            item.corrupted = true;
            ++_itemsCorrupted;
        }
        break;
      default:
        break;
    }
    return true;
}

void
FiberLink::send(WireItem item)
{
    if (!sink)
        sim::panic("FiberLink::send on unconnected link " + name());

    const Tick start = std::max(now(), _busyUntil);
    const Tick duration =
        static_cast<Tick>(item.byteLength()) * byteTime;
    _busyUntil = start + duration;
    _busyTicks += duration;
    _bytesSent += item.byteLength();

    if (!applyFaults(item))
        return; // transmitter still consumed the wire time

    // The first byte is on the remote end one byte-time after
    // transmission starts; the last after the full serialization.
    const Tick firstByte = start + byteTime + propDelay;
    const Tick lastByte = _busyUntil + propDelay;
    deliver(std::move(item), firstByte, lastByte);
}

void
FiberLink::sendStolen(WireItem item)
{
    if (!sink)
        sim::panic("FiberLink::sendStolen on unconnected link " +
                   name());

    if (!applyFaults(item))
        return;

    const Tick duration =
        static_cast<Tick>(item.byteLength()) * byteTime;
    const Tick firstByte = now() + byteTime + propDelay;
    const Tick lastByte = now() + duration + propDelay;
    deliver(std::move(item), firstByte, lastByte);
}

void
FiberLink::deliver(WireItem item, Tick firstByte, Tick lastByte)
{
    eventq().schedule(
        firstByte,
        [this, item = std::move(item), firstByte, lastByte]() mutable {
            sink->fiberDeliver(std::move(item), firstByte, lastByte);
        },
        sim::EventPriority::hardware);
}

} // namespace nectar::phys
