/**
 * @file
 * Unidirectional fiber-optic links with TAXI serialization.
 *
 * Every CAB-HUB and HUB-HUB connection in Nectar is a pair of fibers
 * carrying signals in opposite directions (Section 3.1).  Each fiber
 * runs at an effective 100 megabits/second (the limit imposed by the
 * AMD TAXI serializer chips), i.e. one byte per 80 ns.
 *
 * FiberLink models a single direction: items are serialized in order
 * at the byte rate, then delivered to the remote sink after the
 * propagation delay.  Delivery reports both the arrival tick of the
 * item's first byte and of its last byte, which is what lets the HUB
 * model cut-through forwarding without per-byte events.
 *
 * Replies and ready signals use sendStolen(): the hardware inserts
 * them by stealing cycles from the output register, so they are never
 * blocked behind queued traffic (Section 4.2.1).
 */

#pragma once

#include <cstdint>
#include <functional>

#include "phys/wire.hh"
#include "sim/component.hh"
#include "sim/random.hh"
#include "sim/stats.hh"

namespace nectar::phys {

/** Receiver interface for a fiber's downstream end. */
class FiberSink
{
  public:
    virtual ~FiberSink() = default;

    /**
     * An item has arrived on the fiber.
     *
     * Called at @p firstByte (the tick the item's leading byte
     * arrives); @p lastByte (>= firstByte) is when its trailing byte
     * will have arrived, enabling cut-through forwarding.
     */
    virtual void fiberDeliver(WireItem item, Tick firstByte,
                              Tick lastByte) = 0;
};

/**
 * Configurable fault injection on a link.
 *
 * Probabilities are applied per item.  Command loss exercises the
 * datalink error-recovery path; data corruption exercises transport
 * checksums and retransmission.
 */
struct FaultModel
{
    double dropCommand = 0.0;  ///< P(drop a command word).
    double corruptData = 0.0;  ///< P(mark a data chunk corrupted).
    double dropReply = 0.0;    ///< P(drop a reply word).
    double dropData = 0.0;     ///< P(drop a data chunk entirely).

    bool
    any() const
    {
        return dropCommand > 0 || corruptData > 0 || dropReply > 0 ||
               dropData > 0;
    }
};

/**
 * One direction of a fiber pair.
 */
class FiberLink : public sim::Component
{
  public:
    /**
     * @param eq Event queue.
     * @param name Instance name.
     * @param propDelay One-way propagation delay (ns).  Section 2.3
     *        excludes fiber transmission delays from the latency
     *        goals, so tests typically use 0; realistic runs use
     *        ~5 ns/m.
     * @param byteTime Serialization time per byte.
     */
    FiberLink(sim::EventQueue &eq, std::string name,
              Tick propDelay = 0,
              Tick byteTime = sim::proto::fiberByteTime);

    /** Attach the downstream receiver; must be set before send(). */
    void connectTo(FiberSink &s) { sink = &s; }

    /** True once a sink is attached. */
    bool connected() const { return sink != nullptr; }

    /**
     * Serialize an item onto the fiber in FIFO order.
     *
     * Transmission begins when the transmitter becomes free; the
     * remote sink's fiberDeliver() runs at first-byte arrival.
     */
    void send(WireItem item);

    /**
     * Insert an item by stealing cycles (replies, ready signals).
     * Never waits for queued traffic; delivered after its own
     * serialization time plus propagation delay.
     */
    void sendStolen(WireItem item);

    /** Tick at which the transmitter becomes idle. */
    Tick busyUntil() const { return _busyUntil; }

    /** Enable fault injection with the given model and seed. */
    void setFaults(const FaultModel &model, std::uint64_t seed);

    /** Total payload-carrying wire bytes sent (excludes stolen). */
    std::uint64_t bytesSent() const { return _bytesSent; }
    /** Items dropped by fault injection. */
    std::uint64_t itemsDropped() const { return _itemsDropped; }
    /** Items corrupted by fault injection. */
    std::uint64_t itemsCorrupted() const { return _itemsCorrupted; }

    /** Busy time accumulated, for utilization measurements. */
    Tick busyTicks() const { return _busyTicks; }

  private:
    /** Apply fault model; returns false if the item is dropped. */
    bool applyFaults(WireItem &item);

    void deliver(WireItem item, Tick firstByte, Tick lastByte);

    FiberSink *sink = nullptr;
    Tick propDelay;
    Tick byteTime;
    Tick _busyUntil = 0;
    Tick _busyTicks = 0;

    FaultModel faults;
    sim::Random rng;
    bool faultsEnabled = false;

    std::uint64_t _bytesSent = 0;
    std::uint64_t _itemsDropped = 0;
    std::uint64_t _itemsCorrupted = 0;
};

} // namespace nectar::phys
