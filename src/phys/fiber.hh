/**
 * @file
 * Unidirectional fiber-optic links with TAXI serialization.
 *
 * Every CAB-HUB and HUB-HUB connection in Nectar is a pair of fibers
 * carrying signals in opposite directions (Section 3.1).  Each fiber
 * runs at an effective 100 megabits/second (the limit imposed by the
 * AMD TAXI serializer chips), i.e. one byte per 80 ns.
 *
 * FiberLink models a single direction: items are serialized in order
 * at the byte rate, then delivered to the remote sink after the
 * propagation delay.  Delivery reports both the arrival tick of the
 * item's first byte and of its last byte, which is what lets the HUB
 * model cut-through forwarding without per-byte events.
 *
 * Replies and ready signals use sendStolen(): the hardware inserts
 * them by stealing cycles from the output register, so they are never
 * blocked behind queued traffic (Section 4.2.1).
 */

#pragma once

#include <cstdint>
#include <functional>

#include "phys/wire.hh"
#include "sim/component.hh"
#include "sim/parallel.hh"
#include "sim/random.hh"
#include "sim/stats.hh"

namespace nectar::phys {

/** Receiver interface for a fiber's downstream end. */
class FiberSink
{
  public:
    virtual ~FiberSink() = default;

    /**
     * An item has arrived on the fiber.
     *
     * Called at @p firstByte (the tick the item's leading byte
     * arrives); @p lastByte (>= firstByte) is when its trailing byte
     * will have arrived, enabling cut-through forwarding.
     */
    virtual void fiberDeliver(WireItem item, Tick firstByte,
                              Tick lastByte) = 0;
};

/**
 * Configurable fault injection on a link.
 *
 * Probabilities are applied per item.  Command loss exercises the
 * datalink error-recovery path; data corruption exercises transport
 * checksums and retransmission.
 */
struct FaultModel
{
    double dropCommand = 0.0;  ///< P(drop a command word).
    double corruptData = 0.0;  ///< P(mark a data chunk corrupted).
    double dropReply = 0.0;    ///< P(drop a reply word).
    double dropData = 0.0;     ///< P(drop a data chunk entirely).

    bool
    any() const
    {
        return dropCommand > 0 || corruptData > 0 || dropReply > 0 ||
               dropData > 0;
    }
};

/**
 * Gilbert–Elliott two-state burst-loss model.
 *
 * The channel alternates between a good and a bad state.  The chain
 * evolves in wire time — one transition opportunity per byte slot —
 * so a burst (a connector knocked loose, an optical transient) ends
 * whether or not anything is transmitted through it: a retransmission
 * delayed past the burst sees a clean channel.  An item is lost when
 * any byte slot of its serialization falls in the bad state, so long
 * data chunks are proportionally more exposed than 3-byte command
 * words, exactly as on a real wire.
 *
 * With lossGood = 0 and lossBad = 1 the stationary fraction of wire
 * time spent bad is pGoodBad / (pGoodBad + pBadGood) and the mean
 * burst length is 1 / pBadGood byte times.
 *
 * Markers (start/end of packet) are exempt, mirroring FaultModel: the
 * datalink's framing recovery is exercised through command loss, not
 * through marker truncation.
 */
struct GilbertElliott
{
    double pGoodBad = 0.0; ///< P(good -> bad) per byte slot.
    double pBadGood = 1.0; ///< P(bad -> good) per byte slot.
    double lossGood = 0.0; ///< P(drop) while in the good state.
    double lossBad = 0.0;  ///< P(drop) while in the bad state.

    /** Choose transition rates so @p lossRate of the wire time is
     *  spent in bursts of mean @p meanBurstBytes byte slots
     *  (lossGood = 0, lossBad = 1). */
    static GilbertElliott
    forLossRate(double lossRate, double meanBurstBytes = 8.0)
    {
        GilbertElliott ge;
        ge.lossBad = 1.0;
        ge.pBadGood = 1.0 / meanBurstBytes;
        ge.pGoodBad = lossRate <= 0.0
                          ? 0.0
                          : ge.pBadGood * lossRate / (1.0 - lossRate);
        return ge;
    }
};

/**
 * One direction of a fiber pair.
 */
class FiberLink : public sim::Component
{
  public:
    /**
     * @param eq Event queue.
     * @param name Instance name.
     * @param propDelay One-way propagation delay (ns).  Section 2.3
     *        excludes fiber transmission delays from the latency
     *        goals, so tests typically use 0; realistic runs use
     *        ~5 ns/m.
     * @param byteTime Serialization time per byte.
     */
    FiberLink(sim::EventQueue &eq, std::string name,
              Tick propDelay = 0,
              Tick byteTime = sim::proto::fiberByteTime);

    /** Attach the downstream receiver; must be set before send(). */
    void connectTo(FiberSink &s) { sink = &s; }

    /** True once a sink is attached. */
    bool connected() const { return sink != nullptr; }

    /**
     * Mark this link as a cross-cluster trunk: deliveries execute on
     * the destination cluster in the reserved cross-priority band
     * (sim::crossPriority(src)), mix into the cluster trace, and —
     * when @p channel is non-null — travel through the SPSC mailbox
     * instead of being scheduled directly.  Must be called at build
     * time, before any traffic; all fields are read-only afterwards
     * (the delivery closure runs on the destination worker).
     */
    void
    routeCross(sim::ClusterId srcCluster, sim::ClusterId dstCluster,
               sim::CrossChannel *channel,
               sim::ClusterFingerprint *trace)
    {
        _crossSrc = srcCluster;
        _crossDst = dstCluster;
        _crossChannel = channel;
        _crossTrace = trace;
        _crossActive = true;
    }

    /** True once routeCross() marked this link as a trunk. */
    bool crossRouted() const { return _crossActive; }

    /**
     * Earliest possible influence on the remote end, relative to the
     * send that causes it: one byte's serialization plus propagation.
     * This is the link's contribution to the conservative lookahead.
     */
    Tick minLatency() const { return byteTime + propDelay; }

    /**
     * Serialize an item onto the fiber in FIFO order.
     *
     * Transmission begins when the transmitter becomes free; the
     * remote sink's fiberDeliver() runs at first-byte arrival.
     */
    void send(WireItem item);

    /**
     * Insert an item by stealing cycles (replies, ready signals).
     * Never waits for queued traffic; delivered after its own
     * serialization time plus propagation delay.
     */
    void sendStolen(WireItem item);

    /** Tick at which the transmitter becomes idle. */
    Tick busyUntil() const { return _busyUntil; }

    /**
     * Enable fault injection with the given model and seed.
     *
     * Re-seeding contract: calling this twice with the same model and
     * seed reproduces the identical drop/corrupt decision sequence,
     * and the drop/corrupt counters restart from zero.
     */
    void setFaults(const FaultModel &model, std::uint64_t seed);

    /**
     * Enable (or re-seed) the Gilbert–Elliott burst model.  Runs
     * independently of setFaults(): both may be active, and either
     * may drop an item.  The state machine starts in the good state.
     */
    void setBurstModel(const GilbertElliott &model, std::uint64_t seed);

    /** Disable the burst model. */
    void clearBurstModel();

    /** True while a burst model is installed. */
    bool burstModelActive() const { return burstEnabled; }

    /**
     * Link operational state.  A downed link (cable pulled, laser
     * dark) silently discards everything handed to its transmitter;
     * recovery is the upper layers' problem, which is the point.
     */
    void setLinkUp(bool up) { _up = up; }
    bool linkUp() const { return _up; }

    /** Total payload-carrying wire bytes sent (excludes stolen). */
    std::uint64_t bytesSent() const { return _bytesSent; }
    /** Items dropped by fault injection. */
    std::uint64_t itemsDropped() const { return _itemsDropped; }
    /** Items corrupted by fault injection. */
    std::uint64_t itemsCorrupted() const { return _itemsCorrupted; }
    /** Items dropped by the burst (Gilbert–Elliott) model. */
    std::uint64_t itemsDroppedBurst() const { return _burstDropped; }
    /** Items discarded because the link was down. */
    std::uint64_t itemsDroppedDown() const { return _downDropped; }

    /** Busy time accumulated, for utilization measurements. */
    Tick busyTicks() const { return _busyTicks; }

  private:
    /** Apply fault model; returns false if the item is dropped. */
    bool applyFaults(WireItem &item, Tick start);

    /** Advance the burst model; returns false if the item is lost. */
    bool applyBurst(const WireItem &item, Tick start);

    /** Slots the burst chain dwells in its current state (>= 1). */
    std::int64_t burstDwellSample();

    /**
     * Advance the burst chain by @p slots byte slots.
     * @return true if the bad state was occupied at any point.
     */
    bool burstAdvance(std::int64_t slots);

    void deliver(WireItem item, Tick firstByte, Tick lastByte);

    FiberSink *sink = nullptr;
    Tick propDelay;
    Tick byteTime;
    Tick _busyUntil = 0;
    Tick _busyTicks = 0;

    // Cross-cluster trunk routing (set once at build; see
    // routeCross()).  _crossSeq stamps deliveries in send order and
    // is only touched by the owning (source) cluster's worker.
    sim::ClusterId _crossSrc = sim::unownedCluster;
    sim::ClusterId _crossDst = sim::unownedCluster;
    sim::CrossChannel *_crossChannel = nullptr;
    sim::ClusterFingerprint *_crossTrace = nullptr;
    bool _crossActive = false;
    std::uint64_t _crossSeq = 0;

    FaultModel faults;
    sim::Random rng;
    bool faultsEnabled = false;

    GilbertElliott burst;
    sim::Random burstRng;
    bool burstEnabled = false;
    bool burstBadState = false;
    /** Byte slot the chain has been advanced to; -1 = not started. */
    std::int64_t burstSlot = -1;
    /** Slots remaining before the next state transition. */
    std::int64_t burstDwell = 0;

    bool _up = true;

    std::uint64_t _bytesSent = 0;
    std::uint64_t _itemsDropped = 0;
    std::uint64_t _itemsCorrupted = 0;
    std::uint64_t _burstDropped = 0;
    std::uint64_t _downDropped = 0;
};

} // namespace nectar::phys
