/**
 * @file
 * The wire-level vocabulary of the Nectar-net.
 *
 * A Nectar fiber carries a byte stream in which the HUB I/O ports
 * recognize several kinds of in-band items (Section 4.1 of the paper:
 * "The I/O port extracts commands from the incoming byte stream, and
 * inserts replies to the commands in the outgoing byte stream"):
 *
 *  - 3-byte datalink command words: (opcode, hub id, parameter);
 *  - replies inserted by HUBs (cycle-stealing, never blocked);
 *  - packet framing markers: start-of-packet / end-of-packet;
 *  - data bytes between the markers;
 *  - the ready signal used for inter-HUB packet flow control
 *    (Section 4.2.3).
 *
 * The simulator moves WireItems rather than individual bytes: command
 * words and markers are individual items (as in hardware), while the
 * data between markers travels as chunks that reference a shared
 * payload buffer.  Serialization time is charged per byte, so timing
 * matches a byte-level model while kilobyte packets cost O(1) events.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/buffer.hh"
#include "sim/types.hh"

namespace nectar::phys {

using sim::Tick;

/**
 * Shared immutable payload referenced by data chunks on the wire: a
 * zero-copy view that may chain several underlying buffers (header
 * prepended to payload, fragments awaiting reassembly).
 */
using Payload = sim::PacketView;

/** Wrap @p bytes in a payload view (moved, not copied). */
inline Payload
// nectar-lint: copy-ok by-value entry point that moves the
// vector into a refcounted Buffer; no byte copy happens
makePayload(std::vector<std::uint8_t> bytes)
{
    return Payload(std::move(bytes));
}

/** A 3-byte datalink command word. */
struct CommandWord
{
    std::uint8_t op = 0;    ///< Command opcode.
    std::uint8_t hubId = 0; ///< HUB the command is directed to.
    std::uint8_t param = 0; ///< Typically a port number on that HUB.
};

/**
 * A reply inserted by a HUB into the reverse byte stream.
 *
 * Replies echo the command they answer so the issuing CAB can match
 * them; status carries a result code or queried value.
 */
struct ReplyWord
{
    std::uint8_t op = 0;     ///< Opcode of the command being answered.
    std::uint8_t hubId = 0;  ///< HUB that generated the reply.
    std::uint8_t param = 0;  ///< Parameter of the original command.
    std::uint8_t status = 0; ///< Result code / queried value.
};

/** Kinds of item recognized by an I/O port in the byte stream. */
enum class ItemKind : std::uint8_t {
    command,       ///< 3-byte datalink command word.
    reply,         ///< HUB-inserted reply (cycle-stealing).
    startOfPacket, ///< Packet framing: start marker.
    data,          ///< Payload bytes between the framing markers.
    endOfPacket,   ///< Packet framing: end marker.
    readySignal,   ///< Inter-HUB flow-control signal (cycle-stealing).
};

/** Human-readable name of an ItemKind (for traces and tests). */
const char *itemKindName(ItemKind kind);

/**
 * One item in the simulated byte stream.
 *
 * Exactly one of the kind-specific members is meaningful, selected by
 * @ref kind.  Items are small and copyable; data chunks share their
 * payload buffer.
 */
struct WireItem
{
    ItemKind kind = ItemKind::command;

    CommandWord cmd; ///< Valid when kind == command.
    ReplyWord reply; ///< Valid when kind == reply or readySignal.

    /** Valid when kind == data: this chunk's slice of the packet. */
    Payload data;
    std::uint32_t dataOffset = 0; ///< First payload byte of this chunk.
    std::uint32_t dataLen = 0;    ///< Chunk length in bytes.

    /** Set by fault injection: the receiver will see a bad checksum. */
    bool corrupted = false;

    /** Number of bytes this item occupies on the wire. */
    std::uint32_t byteLength() const;

    /** One-line description for traces. */
    std::string describe() const;

    /** Construct a command item. */
    static WireItem
    command(std::uint8_t op, std::uint8_t hub, std::uint8_t param)
    {
        WireItem w;
        w.kind = ItemKind::command;
        w.cmd = {op, hub, param};
        return w;
    }

    /** Construct a reply item. */
    static WireItem
    makeReply(std::uint8_t op, std::uint8_t hub, std::uint8_t param,
              std::uint8_t status)
    {
        WireItem w;
        w.kind = ItemKind::reply;
        w.reply = {op, hub, param, status};
        return w;
    }

    /** Construct a start-of-packet marker. */
    static WireItem
    startPacket()
    {
        WireItem w;
        w.kind = ItemKind::startOfPacket;
        return w;
    }

    /** Construct an end-of-packet marker. */
    static WireItem
    endPacket()
    {
        WireItem w;
        w.kind = ItemKind::endOfPacket;
        return w;
    }

    /** Construct a data chunk covering [offset, offset+len) of @p p.
     *  The chunk carries a slice of the packet view — no bytes are
     *  copied, and the slice shares the packet's buffers. */
    static WireItem
    dataChunk(const Payload &p, std::uint32_t offset, std::uint32_t len)
    {
        WireItem w;
        w.kind = ItemKind::data;
        w.data = p.slice(offset, len);
        w.dataOffset = offset;
        w.dataLen = len;
        return w;
    }

    /** Construct a ready (flow-control) signal. */
    static WireItem
    ready()
    {
        WireItem w;
        w.kind = ItemKind::readySignal;
        return w;
    }
};

} // namespace nectar::phys
