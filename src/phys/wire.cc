#include "wire.hh"

#include <sstream>

namespace nectar::phys {

const char *
itemKindName(ItemKind kind)
{
    switch (kind) {
      case ItemKind::command: return "command";
      case ItemKind::reply: return "reply";
      case ItemKind::startOfPacket: return "startOfPacket";
      case ItemKind::data: return "data";
      case ItemKind::endOfPacket: return "endOfPacket";
      case ItemKind::readySignal: return "readySignal";
    }
    return "unknown";
}

std::uint32_t
WireItem::byteLength() const
{
    switch (kind) {
      case ItemKind::command:
      case ItemKind::reply:
        return 3;
      case ItemKind::startOfPacket:
      case ItemKind::endOfPacket:
      case ItemKind::readySignal:
        return 1;
      case ItemKind::data:
        return dataLen;
    }
    return 0;
}

std::string
WireItem::describe() const
{
    std::ostringstream os;
    os << itemKindName(kind);
    switch (kind) {
      case ItemKind::command:
        os << "(op=" << int(cmd.op) << " hub=" << int(cmd.hubId)
           << " param=" << int(cmd.param) << ")";
        break;
      case ItemKind::reply:
        os << "(op=" << int(reply.op) << " hub=" << int(reply.hubId)
           << " param=" << int(reply.param)
           << " status=" << int(reply.status) << ")";
        break;
      case ItemKind::data:
        os << "(" << dataLen << "B)";
        break;
      default:
        break;
    }
    if (corrupted)
        os << "[corrupt]";
    return os.str();
}

} // namespace nectar::phys
