/**
 * @file
 * Node-resident Nectarine tasks.
 *
 * Section 6.3: "Tasks are processes on any CAB or node."  A
 * NodeProcess is a task running on a node's CPU: it communicates with
 * CAB-resident tasks (and other node processes) through the
 * shared-memory CAB-node interface — building messages in CAB memory,
 * receiving by polling its inbox mailbox — so every send and receive
 * pays the node-side costs the paper describes.
 */

#pragma once

#include <functional>

#include "nectarine/nectarine.hh"
#include "node/interfaces.hh"
#include "node/node.hh"

namespace nectar::node {

/**
 * The execution context of a task living on a node.
 */
class NodeProcess
{
  public:
    /**
     * @param api The Nectarine runtime (task directory).
     * @param host The node this process runs on.
     * @param site The CAB the node is attached to.
     * @param id This process's task identity.
     * @param inbox Id of this process's inbox mailbox (on the CAB).
     * @param shm The shared-memory interface used for all I/O.
     */
    NodeProcess(nectarine::Nectarine &api, Node &host,
                nectarine::CabSite &site, nectarine::TaskId id,
                cabos::MailboxId inbox, SharedMemoryInterface &shm)
        : api(api), _host(host), site(site), _id(id), inbox(inbox),
          shm(shm)
    {}

    nectarine::TaskId id() const { return _id; }
    Node &host() { return _host; }

    /** Simulated compute on the node's CPU. */
    auto compute(sim::Tick cost) { return _host.cpu().compute(cost); }

    /** Send a message to any task (CAB- or node-resident). */
    sim::Task<bool>
    send(nectarine::TaskId to, std::vector<std::uint8_t> msg,
         bool reliable = true)
    {
        co_return co_await shm.send(
            to.cab, nectarine::Nectarine::inboxId(to.index),
            std::move(msg), reliable);
    }

    /** Blocking receive from this process's inbox (polling). */
    sim::Task<cabos::Message>
    receive()
    {
        co_return co_await shm.receive(inbox);
    }

    /** Non-blocking receive. */
    std::optional<cabos::Message>
    tryReceive()
    {
        return shm.tryReceive(inbox);
    }

  private:
    nectarine::Nectarine &api;
    Node &_host;
    nectarine::CabSite &site;
    nectarine::TaskId _id;
    cabos::MailboxId inbox;
    SharedMemoryInterface &shm;
};

/**
 * Creates and runs node-resident tasks over one Nectarine runtime.
 */
class NodeProcessRunner
{
  public:
    explicit NodeProcessRunner(nectarine::Nectarine &api) : api(api) {}

    /**
     * Start a node process.
     *
     * A Nectarine task is registered (so CAB tasks can address it by
     * name/id), its inbox mailbox lives in the CAB's memory, and the
     * body runs against the node's cost model.
     *
     * @param siteIndex CAB site the node attaches to.
     * @param host The node.
     * @param name Unique task name.
     * @param body The process body.
     */
    nectarine::TaskId
    spawn(std::size_t siteIndex, Node &host, const std::string &name,
          std::function<sim::Task<void>(NodeProcess &)> body);

    /** Processes whose body has completed. */
    int completed() const { return *done; }

  private:
    nectarine::Nectarine &api;
    std::shared_ptr<int> done = std::make_shared<int>(0);
    std::vector<std::unique_ptr<SharedMemoryInterface>> interfaces;
};

} // namespace nectar::node
