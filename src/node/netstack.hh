/**
 * @file
 * A node-resident reliable protocol stack.
 *
 * This is the "all transport protocol processing is performed on the
 * node" configuration (Section 6.2.3, third interface) and also the
 * protocol stack of the LAN baseline the paper compares against
 * (Section 3.1).  Every packet costs in-kernel protocol processing,
 * copies, and an interrupt on the host — the overheads the CAB
 * off-loads in the native configuration.
 *
 * The protocol itself is a windowed go-back-N reliable message
 * protocol using the same wire header as the CAB transport, so the
 * comparison isolates *where* the processing happens, not what the
 * protocol does.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "node/node.hh"
#include "node/rawnet.hh"
#include "sim/component.hh"
#include "sim/coro.hh"
#include "transport/header.hh"

namespace nectar::node {

/** Node-stack tuning. */
struct StackConfig
{
    std::uint32_t mtu = 896;       ///< Payload bytes per packet.
    std::uint32_t windowPackets = 4;
    Tick retransmitTimeout = 5 * ms;
    int maxRetransmits = 8;
};

/** Node-stack statistics. */
struct StackStats
{
    sim::Counter messagesSent;
    sim::Counter messagesDelivered;
    sim::Counter packetsSent;
    sim::Counter packetsReceived;
    sim::Counter retransmissions;
    sim::Counter checksumDrops;
    sim::Counter sendFailures;
};

/**
 * Reliable message transfer between nodes over a RawNet.
 */
class NodeNetStack : public sim::Component
{
  public:
    /**
     * @param host The node whose CPU pays for protocol processing.
     * @param net The raw packet network (Nectar-as-dumb-NIC or
     *        Ethernet).
     */
    NodeNetStack(Node &host, RawNet &net,
                 const StackConfig &config = {});

    std::uint16_t address() const { return net.rawAddress(); }
    StackStats &stats() { return _stats; }

    /**
     * Reliable message send to @p port on node @p dst.
     * @return true once fully acknowledged.
     */
    sim::Task<bool> sendMessage(std::uint16_t dst, std::uint16_t port,
                                sim::PacketView data);

    /** Blocking receive of the next message on @p port. */
    sim::Task<std::vector<std::uint8_t>> receive(std::uint16_t port);

    /** Non-blocking receive. */
    std::optional<std::vector<std::uint8_t>>
    tryReceive(std::uint16_t port);

  private:
    struct SenderFlow
    {
        explicit SenderFlow(sim::EventQueue &eq) : mutex(eq) {}

        std::uint32_t nextSeq = 0;
        std::uint32_t base = 0;
        std::map<std::uint32_t, sim::PacketView> unacked;
        sim::EventId timer = sim::invalidEventId;
        int timeouts = 0;
        bool failed = false;
        sim::AsyncMutex mutex;
        std::vector<std::coroutine_handle<>> waiters;
    };

    struct ReceiverFlow
    {
        std::uint32_t expected = 0;
        sim::PacketView assembly; ///< Chained fragment views.
    };

    struct PortQueue
    {
        std::deque<sim::PacketView> messages;
        std::vector<std::coroutine_handle<>> waiters;
    };

    static std::uint64_t
    key(std::uint16_t peer, std::uint16_t port)
    {
        return (static_cast<std::uint64_t>(peer) << 16) | port;
    }

    SenderFlow &flowTo(std::uint16_t peer, std::uint16_t port);
    void wake(std::vector<std::coroutine_handle<>> &waiters);
    void armTimer(std::uint16_t peer, std::uint16_t port,
                  SenderFlow &flow);
    void onTimeout(std::uint16_t peer, std::uint16_t port);

    void onRawPacket(sim::PacketView &&packet);
    void handleData(const transport::Header &h,
                    sim::PacketView &&payload);
    void handleAck(const transport::Header &h);
    void sendAck(const transport::Header &h, std::uint32_t next);

    /** Charge node protocol cost and transmit via the raw net. */
    sim::Task<void> transmit(std::uint16_t dst, sim::PacketView pkt,
                             bool isAck);

    Node &host;
    RawNet &net;
    StackConfig cfg;
    StackStats _stats;

    std::map<std::uint64_t, std::unique_ptr<SenderFlow>> senders;
    std::map<std::uint64_t, ReceiverFlow> receivers;
    std::map<std::uint16_t, PortQueue> ports;
    std::uint32_t nextMsgId = 1;
};

} // namespace nectar::node
