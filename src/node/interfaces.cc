#include "interfaces.hh"

#include "sim/logging.hh"

namespace nectar::node {

using cabos::Message;

// --------------------------------------------------------------------
// SharedMemoryInterface
// --------------------------------------------------------------------

SharedMemoryInterface::SharedMemoryInterface(Node &host,
                                             nectarine::CabSite &site)
    : sim::Component(host.eventq(), host.name() + ".shm"), host(host),
      site(site)
{
}

sim::Task<bool>
SharedMemoryInterface::send(transport::CabAddress dst,
                            std::uint16_t dstMailbox,
                            std::vector<std::uint8_t> data,
                            bool reliable)
{
    // Build the message in place in CAB memory over VME: no node-side
    // copy beyond the VME transfer itself, no system call.
    co_await host.vme().transferAwait(
        static_cast<std::uint32_t>(data.size()));
    site.board->memory().account(cab::Accessor::vmeDma, data.size());

    // "Node processes invoke services by placing a command in a
    // special mailbox on the CAB" — a small descriptor write.
    co_await host.vme().transferAwait(32);

    // The CAB-side service executes the transport operation; the node
    // polls a completion word in CAB memory.
    struct Status
    {
        bool done = false;
        bool ok = false;
    };
    auto status = std::make_shared<Status>();
    sim::spawn([](transport::Transport &tp, transport::CabAddress dst,
                  std::uint16_t mb, std::vector<std::uint8_t> data,
                  bool reliable,
                  std::shared_ptr<Status> status) -> sim::Task<void> {
        bool ok;
        if (reliable)
            ok = co_await tp.sendReliable(dst, mb, std::move(data));
        else
            ok = co_await tp.sendDatagram(dst, mb, std::move(data));
        status->ok = ok;
        status->done = true;
    }(*site.transport, dst, dstMailbox, std::move(data), reliable,
      status));

    while (!status->done) {
        _polls.add();
        co_await host.vme().transferAwait(4); // read the status word
        if (status->done)
            break;
        co_await sim::Delay{eventq(), host.costs().pollInterval};
    }
    co_return status->ok;
}

std::optional<Message>
SharedMemoryInterface::tryReceive(cabos::MailboxId box)
{
    cabos::Mailbox *mb = site.kernel->mailbox(box);
    if (!mb)
        sim::fatal(name() + ": no such mailbox " + std::to_string(box));
    _polls.add();
    host.vme().transfer(4); // read the mailbox status word
    auto m = mb->tryGet();
    if (m) {
        // Consume the message in place: one VME transfer, no node
        // kernel involvement.
        host.vme().transfer(static_cast<std::uint32_t>(m->size()));
        site.board->memory().account(cab::Accessor::vmeDma,
                                     m->size());
    }
    return m;
}

sim::Task<Message>
SharedMemoryInterface::receive(cabos::MailboxId box)
{
    for (;;) {
        auto m = tryReceive(box);
        if (m)
            co_return std::move(*m);
        co_await sim::Delay{eventq(), host.costs().pollInterval};
    }
}

// --------------------------------------------------------------------
// SocketInterface
// --------------------------------------------------------------------

SocketInterface::SocketInterface(Node &host, nectarine::CabSite &site)
    : sim::Component(host.eventq(), host.name() + ".socket"),
      host(host), site(site)
{
}

sim::Task<bool>
SocketInterface::send(transport::CabAddress dst,
                      std::uint16_t dstMailbox,
                      std::vector<std::uint8_t> data, bool reliable)
{
    // write(): system call, copy into the kernel, VME into the CAB.
    co_await host.syscall();
    co_await host.copy(data.size());
    co_await host.vme().transferAwait(
        static_cast<std::uint32_t>(data.size()));
    site.board->memory().account(cab::Accessor::vmeDma, data.size());

    // The CAB runs the transport protocol and interrupts the node on
    // completion; the blocked process pays a context switch to wake.
    sim::Channel<bool> done(eventq());
    // nectar-lint: capture-ok done lives in this coroutine frame,
    // which stays suspended at done.pop() until the interrupt fires
    sim::spawn([](transport::Transport &tp, transport::CabAddress dst,
                  std::uint16_t mb, std::vector<std::uint8_t> data,
                  bool reliable, Node &host,
                  sim::Channel<bool> &done) -> sim::Task<void> {
        bool ok;
        if (reliable)
            ok = co_await tp.sendReliable(dst, mb, std::move(data));
        else
            ok = co_await tp.sendDatagram(dst, mb, std::move(data));
        host.raiseInterrupt([&done, ok] { done.push(ok); });
    }(*site.transport, dst, dstMailbox, std::move(data), reliable,
      host, done));

    bool ok = co_await done.pop();
    co_await host.cpu().compute(host.costs().contextSwitch);
    co_return ok;
}

sim::Task<Message>
SocketInterface::receive(cabos::MailboxId box)
{
    cabos::Mailbox *mb = site.kernel->mailbox(box);
    if (!mb)
        sim::fatal(name() + ": no such mailbox " + std::to_string(box));

    // read(): system call, then block until the CAB interrupts.
    co_await host.syscall();

    sim::Channel<Message> arrived(eventq());
    site.kernel->spawnThread(
        "sockrx", [](cabos::Mailbox &mb, Node &host,
                     sim::Channel<Message> &arrived) -> sim::Task<void> {
            Message m = co_await mb.get();
            auto shared = std::make_shared<Message>(std::move(m));
            host.raiseInterrupt([&arrived, shared] {
                arrived.push(std::move(*shared));
            });
        }(*mb, host, arrived));

    Message m = co_await arrived.pop();
    // Wakeup context switch, VME transfer, kernel-to-user copy.
    co_await host.cpu().compute(host.costs().contextSwitch);
    co_await host.vme().transferAwait(
        static_cast<std::uint32_t>(m.size()));
    site.board->memory().account(cab::Accessor::vmeDma,
                                 m.size());
    co_await host.copy(m.size());
    co_return m;
}

} // namespace nectar::node
