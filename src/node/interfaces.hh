/**
 * @file
 * The CAB-node interfaces of Section 6.2.3.
 *
 * "Three CAB-node interfaces are provided, with different tradeoffs
 * between efficiency and transparency:
 *
 *  - The most efficient CAB-node interface is based on shared
 *    memory: the CAB memory is mapped into the address space of the
 *    node process ... This interface is efficient since it
 *    eliminates copying the message between the node and the CAB and
 *    does not involve the operating system on the node.  Messages
 *    are received by polling CAB memory.
 *  - A second approach is to provide a Berkeley UNIX socket
 *    interface to Nectar.  This interface is less efficient since it
 *    involves system call overhead and data copying on the node.
 *    But the transport protocol overhead is off-loaded onto the CAB.
 *  - The third interface is a Berkeley UNIX network driver ..."
 *    (implemented as NodeNetStack over NectarRawNet; see netstack.hh).
 */

#pragma once

#include <optional>

#include "nectarine/system.hh"
#include "node/node.hh"
#include "sim/component.hh"
#include "sim/coro.hh"

namespace nectar::node {

/**
 * The shared-memory CAB-node interface: messages are built and
 * consumed in place in CAB memory over VME; no system calls; receive
 * by polling.
 */
class SharedMemoryInterface : public sim::Component
{
  public:
    SharedMemoryInterface(Node &host, nectarine::CabSite &site);

    /**
     * Send a message from a node process: build it in CAB memory,
     * post a command in the command mailbox, poll for completion.
     *
     * @param reliable Use the byte-stream protocol (else datagram).
     * @return The protocol's result.
     */
    sim::Task<bool> send(transport::CabAddress dst,
                         std::uint16_t dstMailbox,
                         std::vector<std::uint8_t> data,
                         bool reliable = true);

    /**
     * Receive the next message from a CAB mailbox by polling.
     */
    sim::Task<cabos::Message> receive(cabos::MailboxId box);

    /** Non-blocking poll. */
    std::optional<cabos::Message> tryReceive(cabos::MailboxId box);

    std::uint64_t pollCycles() const { return _polls.value(); }

  private:
    Node &host;
    nectarine::CabSite &site;
    sim::Counter _polls;
};

/**
 * The Berkeley-socket-style CAB-node interface: system calls and
 * copies on the node; protocol processing on the CAB; blocking
 * receive woken by a VME interrupt.
 */
class SocketInterface : public sim::Component
{
  public:
    SocketInterface(Node &host, nectarine::CabSite &site);

    /** write()-style send through the CAB transport. */
    sim::Task<bool> send(transport::CabAddress dst,
                         std::uint16_t dstMailbox,
                         std::vector<std::uint8_t> data,
                         bool reliable = true);

    /** read()-style blocking receive from a CAB mailbox. */
    sim::Task<cabos::Message> receive(cabos::MailboxId box);

  private:
    Node &host;
    nectarine::CabSite &site;
};

} // namespace nectar::node
