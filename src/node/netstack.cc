#include "netstack.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace nectar::node {

using transport::Header;
using transport::Proto;

NodeNetStack::NodeNetStack(Node &host, RawNet &net,
                           const StackConfig &config)
    : sim::Component(host.eventq(), host.name() + ".netstack"),
      host(host), net(net), cfg(config)
{
    net.rxRaw = [this](sim::PacketView &&packet) {
        onRawPacket(std::move(packet));
    };
}

NodeNetStack::SenderFlow &
NodeNetStack::flowTo(std::uint16_t peer, std::uint16_t port)
{
    auto k = key(peer, port);
    auto it = senders.find(k);
    if (it == senders.end()) {
        it = senders.emplace(k, std::make_unique<SenderFlow>(eventq()))
                 .first;
    }
    return *it->second;
}

void
NodeNetStack::wake(std::vector<std::coroutine_handle<>> &waiters)
{
    auto list = std::move(waiters);
    waiters.clear();
    for (auto h : list) {
        eventq().scheduleIn(sim::ticks::immediate, [h] { h.resume(); },
                            sim::EventPriority::software);
    }
}

namespace {

struct ParkOn
{
    std::vector<std::coroutine_handle<>> &list;

    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<> h) { list.push_back(h); }
    void await_resume() const {}
};

} // namespace

sim::Task<void>
NodeNetStack::transmit(std::uint16_t dst, sim::PacketView pkt,
                       bool isAck)
{
    // In-kernel protocol processing on the host (acks are cheaper).
    Tick cost = isAck ? host.costs().protocolPerPacketSend / 4
                      : host.costs().protocolPerPacketSend;
    co_await host.cpu().compute(cost);
    _stats.packetsSent.add();
    co_await net.rawSend(dst, std::move(pkt));
}

void
NodeNetStack::armTimer(std::uint16_t peer, std::uint16_t port,
                       SenderFlow &flow)
{
    // Slide the deadline in place when the timer is still armed (the
    // engine's lazy re-arm fast path); fall back to a fresh event.
    sim::EventId fresh =
        eventq().rearmIn(flow.timer, cfg.retransmitTimeout);
    if (fresh != sim::invalidEventId) {
        flow.timer = fresh;
        return;
    }
    flow.timer = eventq().scheduleIn(
        cfg.retransmitTimeout,
        [this, peer, port] { onTimeout(peer, port); },
        sim::EventPriority::software);
}

void
NodeNetStack::onTimeout(std::uint16_t peer, std::uint16_t port)
{
    SenderFlow &flow = flowTo(peer, port);
    if (flow.unacked.empty())
        return;
    if (++flow.timeouts > cfg.maxRetransmits) {
        flow.failed = true;
        flow.unacked.clear();
        flow.base = flow.nextSeq;
        _stats.sendFailures.add();
        wake(flow.waiters);
        return;
    }
    for (const auto &[seq, pkt] : flow.unacked) {
        _stats.retransmissions.add();
        sim::spawn(transmit(peer, pkt, false));
    }
    armTimer(peer, port, flow);
}

sim::Task<bool>
NodeNetStack::sendMessage(std::uint16_t dst, std::uint16_t port,
                          sim::PacketView data)
{
    _stats.messagesSent.add();
    SenderFlow &flow = flowTo(dst, port);
    co_await flow.mutex.lock();
    flow.failed = false;
    flow.timeouts = 0;

    // The application's buffer crosses into the kernel.
    co_await host.copy(data.size());

    std::uint32_t msg_id = nextMsgId++;
    auto frag_count = static_cast<std::uint16_t>(
        std::max<std::size_t>(1, (data.size() + cfg.mtu - 1) / cfg.mtu));

    for (std::uint16_t i = 0; i < frag_count && !flow.failed; ++i) {
        while (!flow.failed &&
               flow.nextSeq - flow.base >= cfg.windowPackets)
            co_await ParkOn{flow.waiters};
        if (flow.failed)
            break;

        std::size_t off = static_cast<std::size_t>(i) * cfg.mtu;
        std::size_t len = std::min<std::size_t>(cfg.mtu,
                                                data.size() - off);
        Header h;
        h.protocol = Proto::stream;
        h.srcCab = net.rawAddress();
        h.dstCab = dst;
        h.dstMailbox = port;
        h.seq = flow.nextSeq++;
        h.msgId = msg_id;
        h.fragIndex = i;
        h.fragCount = frag_count;
        if (i + 1 == frag_count)
            h.flags |= transport::flags::lastFragment;

        auto pkt = encodePacket(h, data.slice(off, len));
        flow.unacked.emplace(h.seq, pkt);
        armTimer(dst, port, flow);
        co_await transmit(dst, std::move(pkt), false);
    }

    while (!flow.failed && flow.base != flow.nextSeq)
        co_await ParkOn{flow.waiters};

    bool ok = !flow.failed;
    flow.mutex.unlock();
    co_return ok;
}

void
NodeNetStack::onRawPacket(sim::PacketView &&packet)
{
    _stats.packetsReceived.add();
    sim::PacketView payload;
    auto h = transport::decodePacket(packet, payload);
    if (!h || h->dstCab != net.rawAddress()) {
        _stats.checksumDrops.add();
        return;
    }
    // In-kernel receive processing cost, then act.
    Tick cost = h->protocol == Proto::ack
                    ? host.costs().protocolPerPacketRecv / 4
                    : host.costs().protocolPerPacketRecv;
    Header header = *h;
    host.cpu().chargeThen(
        cost, [this, header, payload = std::move(payload)]() mutable {
            if (header.protocol == Proto::ack)
                handleAck(header);
            else if (header.protocol == Proto::stream)
                handleData(header, std::move(payload));
            else
                _stats.checksumDrops.add();
        });
}

void
NodeNetStack::sendAck(const Header &h, std::uint32_t next)
{
    Header ack;
    ack.protocol = Proto::ack;
    ack.srcCab = net.rawAddress();
    ack.dstCab = h.srcCab;
    ack.srcMailbox = h.dstMailbox;
    ack.ack = next;
    sim::spawn(transmit(h.srcCab,
                        encodePacket(ack, sim::PacketView{}), true));
}

void
NodeNetStack::handleData(const Header &h, sim::PacketView &&payload)
{
    ReceiverFlow &flow = receivers[key(h.srcCab, h.dstMailbox)];
    if (h.seq != flow.expected) {
        sendAck(h, flow.expected);
        return;
    }
    ++flow.expected;
    flow.assembly.append(payload);
    if (h.flags & transport::flags::lastFragment) {
        _stats.messagesDelivered.add();
        PortQueue &pq = ports[h.dstMailbox];
        pq.messages.push_back(std::move(flow.assembly));
        flow.assembly = sim::PacketView{};
        // Waking a blocked receiver is a process context switch.
        host.cpu().charge(host.costs().contextSwitch);
        wake(pq.waiters);
    }
    sendAck(h, flow.expected);
}

void
NodeNetStack::handleAck(const Header &h)
{
    SenderFlow &flow = flowTo(h.srcCab, h.srcMailbox);
    if (h.ack <= flow.base)
        return;
    flow.base = std::min(h.ack, flow.nextSeq);
    flow.timeouts = 0;
    while (!flow.unacked.empty() &&
           flow.unacked.begin()->first < flow.base)
        flow.unacked.erase(flow.unacked.begin());
    if (flow.unacked.empty()) {
        if (eventq().pending(flow.timer))
            eventq().cancel(flow.timer);
    } else {
        armTimer(h.srcCab, h.srcMailbox, flow);
    }
    wake(flow.waiters);
}

sim::Task<std::vector<std::uint8_t>>
NodeNetStack::receive(std::uint16_t port)
{
    PortQueue &pq = ports[port];
    while (pq.messages.empty())
        co_await ParkOn{pq.waiters};
    auto msg = std::move(pq.messages.front());
    pq.messages.pop_front();
    // The message is copied up to the application (the one counted
    // materialization on this path).
    co_await host.copy(msg.size());
    co_return msg.toVector();
}

std::optional<std::vector<std::uint8_t>>
NodeNetStack::tryReceive(std::uint16_t port)
{
    PortQueue &pq = ports[port];
    if (pq.messages.empty())
        return std::nullopt;
    auto msg = std::move(pq.messages.front());
    pq.messages.pop_front();
    host.cpu().charge(static_cast<Tick>(
        static_cast<double>(msg.size()) * host.costs().copyPerByteNs));
    return msg.toVector();
}

} // namespace nectar::node
