#include "node_process.hh"

namespace nectar::node {

nectarine::TaskId
NodeProcessRunner::spawn(
    std::size_t siteIndex, Node &host, const std::string &name,
    std::function<sim::Task<void>(NodeProcess &)> body)
{
    nectarine::TaskId id = api.registerExternalTask(siteIndex, name);
    nectarine::CabSite &site = api.siteOf(id);
    interfaces.push_back(
        std::make_unique<SharedMemoryInterface>(host, site));
    SharedMemoryInterface &shm = *interfaces.back();

    auto proc = std::make_shared<NodeProcess>(
        api, host, site, id, nectarine::Nectarine::inboxId(id.index),
        shm);

    // Start from the event queue so processes created together all
    // exist before any of them runs (as Kernel::spawnThread does).
    host.eventq().scheduleIn(
        sim::ticks::immediate,
        [this, proc, body = std::move(body)] {
            sim::spawn(
                [](std::shared_ptr<NodeProcess> p,
                   std::function<sim::Task<void>(NodeProcess &)> body,
                   std::shared_ptr<int> done,
                   nectarine::Nectarine &api) -> sim::Task<void> {
                    co_await body(*p);
                    ++*done;
                    api.noteExternalTaskDone();
                }(proc, std::move(body), done, api));
        },
        sim::EventPriority::software);
    return id;
}

} // namespace nectar::node
