/**
 * @file
 * Nectar nodes: the existing machines attached to CABs over VME.
 *
 * Section 3.2: "a node can be any system running UNIX or Mach with a
 * VME interface" (Sun-3s, Sun-4s and Warp systems in the initial
 * system).  The node model charges the 1989-era host costs that the
 * paper's software architecture is designed to avoid: system calls,
 * data copies, per-packet interrupts, and process context switches
 * ("Typical profiles of networking implementations on UNIX show that
 * the time spent in the software dominates the time spent on the
 * wire", Section 3.1, citing [3,5,11]).
 */

#pragma once

#include <functional>
#include <string>

#include "cab/cpu.hh"
#include "sim/component.hh"
#include "sim/coro.hh"
#include "sim/stats.hh"

namespace nectar::node {

using sim::Tick;
using namespace sim::ticks;

/**
 * Host operation costs (order-of-magnitude 1989 UNIX workstation,
 * calibrated against the paper's reference measurements [3,5,11]).
 */
struct NodeCostModel
{
    /** System call entry/exit. */
    Tick syscall = 20 * us;

    /** Interrupt dispatch through the driver to a wakeup. */
    Tick interrupt = 50 * us;

    /** Process context switch (full UNIX process, not a thread). */
    Tick contextSwitch = 80 * us;

    /** Per-byte memory copy (user/kernel crossing): ~10 MB/s. */
    double copyPerByteNs = 100.0;

    /** Polling granularity for the shared-memory interface. */
    Tick pollInterval = 10 * us;

    /**
     * In-kernel transport processing per packet when the node runs
     * the protocol suite itself (the network-driver interface and
     * the LAN baseline).
     */
    Tick protocolPerPacketSend = 150 * us;
    Tick protocolPerPacketRecv = 200 * us;
};

/**
 * The VME bus between one node and its CAB: 10 megabytes/second
 * (Section 5.2), shared by all transfers in both directions.
 */
class VmeBus : public sim::Component
{
  public:
    VmeBus(sim::EventQueue &eq, std::string name,
           Tick byteTime = sim::proto::vmeByteTime)
        : sim::Component(eq, std::move(name)), byteTime(byteTime)
    {}

    /**
     * Reserve the bus for a transfer of @p bytes.
     * @return Completion tick (transfers serialize on the bus).
     */
    Tick
    transfer(std::uint32_t bytes)
    {
        Tick start = std::max(now(), _busyUntil);
        Tick duration = static_cast<Tick>(bytes) * byteTime;
        _busyUntil = start + duration;
        _busyTicks += duration;
        _bytes.add(bytes);
        return _busyUntil;
    }

    /** Awaitable form of transfer(). */
    auto
    transferAwait(std::uint32_t bytes)
    {
        Tick done = transfer(bytes);
        return sim::Delay{eventq(), done - now()};
    }

    std::uint64_t bytesTransferred() const { return _bytes.value(); }
    Tick busyTicks() const { return _busyTicks; }

  private:
    Tick byteTime;
    Tick _busyUntil = 0;
    Tick _busyTicks = 0;
    sim::Counter _bytes;
};

/**
 * A node: host CPU (serialized resource) plus its VME bus.
 */
class Node : public sim::Component
{
  public:
    Node(sim::EventQueue &eq, std::string name,
         const NodeCostModel &costs = {})
        : sim::Component(eq, name), _costs(costs),
          _cpu(eq, name + ".cpu"), _vme(eq, name + ".vme")
    {}

    const NodeCostModel &costs() const { return _costs; }
    cab::CpuResource &cpu() { return _cpu; }
    VmeBus &vme() { return _vme; }

    /** Awaitable: charge a system call on the host CPU. */
    auto syscall() { return _cpu.compute(_costs.syscall); }

    /** Awaitable: charge a user/kernel copy of @p bytes. */
    auto
    copy(std::uint64_t bytes)
    {
        return _cpu.compute(static_cast<Tick>(
            static_cast<double>(bytes) * _costs.copyPerByteNs));
    }

    /**
     * Deliver a device interrupt to the node: charges interrupt
     * dispatch on the host CPU, then runs @p handler.
     */
    void
    raiseInterrupt(std::function<void()> handler)
    {
        _interrupts.add();
        _cpu.chargeThen(_costs.interrupt, std::move(handler));
    }

    std::uint64_t interruptsTaken() const { return _interrupts.value(); }

  private:
    NodeCostModel _costs;
    cab::CpuResource _cpu;
    VmeBus _vme;
    sim::Counter _interrupts;
};

} // namespace nectar::node
