/**
 * @file
 * Raw packet networks, as seen by a node-resident protocol stack.
 *
 * Section 6.2.3, third interface: "a Berkeley UNIX network driver for
 * Nectar.  In this case, Nectar is used as a 'dumb' network and all
 * transport protocol processing is performed on the node."  RawNet is
 * the driver-level abstraction that the node stack (netstack.hh)
 * runs over; NectarRawNet implements it on a CAB used as a plain
 * network interface, and baseline::EthernetNic implements it on the
 * 10 Mb/s LAN the paper compares against.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "nectarine/system.hh"
#include "node/node.hh"
#include "sim/coro.hh"

namespace nectar::node {

/**
 * A best-effort packet network between nodes.
 *
 * Implementations charge their own link/driver costs; delivery
 * invokes rxRaw on the destination (already on the destination
 * node's interrupt path).
 */
class RawNet
{
  public:
    virtual ~RawNet() = default;

    /** This interface's network address. */
    virtual std::uint16_t rawAddress() const = 0;

    /**
     * Transmit one packet (best effort).
     * @return true when the packet left this station.
     */
    virtual sim::Task<bool> rawSend(std::uint16_t dst,
                                    sim::PacketView packet) = 0;

    /** Upcall on packet arrival (set by the node stack).  All taps
     *  on one station share the arriving packet's buffers. */
    std::function<void(sim::PacketView &&)> rxRaw;
};

/**
 * A CAB used as a dumb network interface.
 *
 * Takes over the site's datalink receive handler: a site driven
 * through NectarRawNet must not simultaneously use its CAB-resident
 * Transport.  Every arriving packet crosses the VME bus and
 * interrupts the node — exactly the per-packet burden the CAB
 * architecture exists to remove (Section 3.1).
 */
class NectarRawNet : public RawNet, public sim::Component
{
  public:
    /**
     * @param host The node.
     * @param site The CAB site acting as the NIC.
     * @param directory Route lookup.
     * @param mode Switching discipline for data packets.
     */
    NectarRawNet(Node &host, nectarine::CabSite &site,
                 transport::NetworkDirectory &directory,
                 datalink::SwitchMode mode =
                     datalink::SwitchMode::packet)
        : sim::Component(host.eventq(), host.name() + ".nectarnic"),
          host(host), site(site), directory(directory), mode(mode)
    {
        site.datalink->rxHandler =
            [this](sim::PacketView &&packet, bool corrupted) {
                onPacket(std::move(packet), corrupted);
            };
    }

    std::uint16_t rawAddress() const override { return site.address; }

    sim::Task<bool>
    rawSend(std::uint16_t dst, sim::PacketView packet) override
    {
        // Kernel copy and VME transfer into CAB memory.
        co_await host.copy(packet.size());
        co_await host.vme().transferAwait(
            static_cast<std::uint32_t>(packet.size()));
        site.board->memory().account(cab::Accessor::vmeDma,
                                     packet.size());
        const topo::Route &route = directory.route(site.address, dst);
        bool ok = co_await site.datalink->sendPacket(
            route, std::move(packet), mode);
        co_return ok;
    }

  private:
    void
    onPacket(sim::PacketView &&packet, bool corrupted)
    {
        if (corrupted)
            return; // dropped by the NIC; the node stack retransmits
        // The packet crosses the VME bus, then interrupts the node.
        host.vme().transfer(static_cast<std::uint32_t>(packet.size()));
        site.board->memory().account(cab::Accessor::vmeDma,
                                     packet.size());
        // The view is captured by value: the interrupt handler hands
        // the same shared buffers to the receiver, with no per-packet
        // heap wrapper and no duplicated byte vector.
        host.raiseInterrupt([this, packet = std::move(packet)]() mutable {
            if (rxRaw)
                rxRaw(std::move(packet));
        });
    }

    Node &host;
    nectarine::CabSite &site;
    transport::NetworkDirectory &directory;
    datalink::SwitchMode mode;
};

} // namespace nectar::node
