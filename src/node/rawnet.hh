/**
 * @file
 * Raw packet networks, as seen by a node-resident protocol stack.
 *
 * Section 6.2.3, third interface: "a Berkeley UNIX network driver for
 * Nectar.  In this case, Nectar is used as a 'dumb' network and all
 * transport protocol processing is performed on the node."  RawNet is
 * the driver-level abstraction that the node stack (netstack.hh)
 * runs over; NectarRawNet implements it on a CAB used as a plain
 * network interface, and baseline::EthernetNic implements it on the
 * 10 Mb/s LAN the paper compares against.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "nectarine/system.hh"
#include "node/node.hh"
#include "sim/coro.hh"

namespace nectar::node {

/**
 * A best-effort packet network between nodes.
 *
 * Implementations charge their own link/driver costs; delivery
 * invokes rxRaw on the destination (already on the destination
 * node's interrupt path).
 */
class RawNet
{
  public:
    virtual ~RawNet() = default;

    /** This interface's network address. */
    virtual std::uint16_t rawAddress() const = 0;

    /**
     * Transmit one packet (best effort).
     * @return true when the packet left this station.
     */
    virtual sim::Task<bool> rawSend(std::uint16_t dst,
                                    std::vector<std::uint8_t> bytes) = 0;

    /** Upcall on packet arrival (set by the node stack). */
    std::function<void(std::vector<std::uint8_t> &&)> rxRaw;
};

/**
 * A CAB used as a dumb network interface.
 *
 * Takes over the site's datalink receive handler: a site driven
 * through NectarRawNet must not simultaneously use its CAB-resident
 * Transport.  Every arriving packet crosses the VME bus and
 * interrupts the node — exactly the per-packet burden the CAB
 * architecture exists to remove (Section 3.1).
 */
class NectarRawNet : public RawNet, public sim::Component
{
  public:
    /**
     * @param host The node.
     * @param site The CAB site acting as the NIC.
     * @param directory Route lookup.
     * @param mode Switching discipline for data packets.
     */
    NectarRawNet(Node &host, nectarine::CabSite &site,
                 transport::NetworkDirectory &directory,
                 datalink::SwitchMode mode =
                     datalink::SwitchMode::packet)
        : sim::Component(host.eventq(), host.name() + ".nectarnic"),
          host(host), site(site), directory(directory), mode(mode)
    {
        site.datalink->rxHandler =
            [this](std::vector<std::uint8_t> &&bytes, bool corrupted) {
                onPacket(std::move(bytes), corrupted);
            };
    }

    std::uint16_t rawAddress() const override { return site.address; }

    sim::Task<bool>
    rawSend(std::uint16_t dst, std::vector<std::uint8_t> bytes) override
    {
        // Kernel copy and VME transfer into CAB memory.
        co_await host.copy(bytes.size());
        co_await host.vme().transferAwait(
            static_cast<std::uint32_t>(bytes.size()));
        site.board->memory().account(cab::Accessor::vmeDma,
                                     bytes.size());
        const topo::Route &route = directory.route(site.address, dst);
        bool ok = co_await site.datalink->sendPacket(
            route, phys::makePayload(std::move(bytes)), mode);
        co_return ok;
    }

  private:
    void
    onPacket(std::vector<std::uint8_t> &&bytes, bool corrupted)
    {
        if (corrupted)
            return; // dropped by the NIC; the node stack retransmits
        // The packet crosses the VME bus, then interrupts the node.
        host.vme().transfer(static_cast<std::uint32_t>(bytes.size()));
        site.board->memory().account(cab::Accessor::vmeDma,
                                     bytes.size());
        auto shared = std::make_shared<std::vector<std::uint8_t>>(
            std::move(bytes));
        host.raiseInterrupt([this, shared] {
            if (rxRaw)
                rxRaw(std::move(*shared));
        });
    }

    Node &host;
    nectarine::CabSite &site;
    transport::NetworkDirectory &directory;
    datalink::SwitchMode mode;
};

} // namespace nectar::node
