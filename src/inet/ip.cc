#include "ip.hh"

#include "cab/checksum.hh"
#include "sim/logging.hh"

namespace nectar::inet {

namespace {

void
put16(std::vector<std::uint8_t> &v, std::size_t off, std::uint16_t x)
{
    v[off] = static_cast<std::uint8_t>(x >> 8);
    v[off + 1] = static_cast<std::uint8_t>(x);
}

void
put32(std::vector<std::uint8_t> &v, std::size_t off, std::uint32_t x)
{
    v[off] = static_cast<std::uint8_t>(x >> 24);
    v[off + 1] = static_cast<std::uint8_t>(x >> 16);
    v[off + 2] = static_cast<std::uint8_t>(x >> 8);
    v[off + 3] = static_cast<std::uint8_t>(x);
}

std::uint16_t
get16(const std::uint8_t *v, std::size_t off)
{
    return static_cast<std::uint16_t>((v[off] << 8) | v[off + 1]);
}

std::uint32_t
get32(const std::uint8_t *v, std::size_t off)
{
    return (static_cast<std::uint32_t>(v[off]) << 24) |
           (static_cast<std::uint32_t>(v[off + 1]) << 16) |
           (static_cast<std::uint32_t>(v[off + 2]) << 8) |
           static_cast<std::uint32_t>(v[off + 3]);
}

} // namespace

sim::PacketView
encodeIp(Ipv4Header h, const sim::PacketView &pl)
{
    h.totalLength =
        static_cast<std::uint16_t>(Ipv4Header::wireSize + pl.size());
    std::vector<std::uint8_t> out(Ipv4Header::wireSize, 0);
    out[0] = 0x45; // version 4, IHL 5
    out[1] = h.tos;
    put16(out, 2, h.totalLength);
    put16(out, 4, h.id);
    put16(out, 6, 0x4000); // DF, no fragments
    out[8] = h.ttl;
    out[9] = h.protocol;
    // checksum (offset 10) computed over the header with field zero.
    put32(out, 12, h.src);
    put32(out, 16, h.dst);
    std::uint16_t sum =
        cab::checksum16(out.data(), Ipv4Header::wireSize);
    put16(out, 10, sum);
    return sim::PacketView::concat(sim::PacketView(std::move(out)), pl);
}

std::optional<Ipv4Header>
decodeIp(const sim::PacketView &packet, sim::PacketView &payload)
{
    if (packet.size() < Ipv4Header::wireSize)
        return std::nullopt;

    std::uint8_t hdr[Ipv4Header::wireSize];
    packet.read(0, hdr, Ipv4Header::wireSize);
    if (hdr[0] != 0x45)
        return std::nullopt; // options unsupported

    Ipv4Header h;
    h.tos = hdr[1];
    h.totalLength = get16(hdr, 2);
    h.id = get16(hdr, 4);
    h.ttl = hdr[8];
    h.protocol = hdr[9];
    h.checksum = get16(hdr, 10);
    h.src = get32(hdr, 12);
    h.dst = get32(hdr, 16);

    if (h.totalLength != packet.size())
        return std::nullopt;

    hdr[10] = 0;
    hdr[11] = 0;
    if (cab::checksum16(hdr, Ipv4Header::wireSize) != h.checksum)
        return std::nullopt;

    payload = packet.slice(Ipv4Header::wireSize);
    return h;
}

IpLayer::IpLayer(cabos::Kernel &kernel, datalink::Datalink &dl,
                 transport::NetworkDirectory &directory,
                 transport::CabAddress self)
    : sim::Component(kernel.eventq(),
                     kernel.board().name() + ".ip"),
      _kernel(kernel), dl(dl), directory(directory), self(self)
{
    dl.rxHandler = [this](sim::PacketView &&packet, bool corrupted) {
        onPacket(std::move(packet), corrupted);
    };
}

sim::Task<bool>
IpLayer::send(IpAddress dst, std::uint8_t protocol,
              sim::PacketView payload)
{
    auto dst_cab = cabOfIp(dst);
    if (!dst_cab)
        sim::fatal(name() + ": destination outside the Nectar subnet");

    Ipv4Header h;
    h.id = nextId++;
    h.protocol = protocol;
    h.src = address();
    h.dst = dst;
    auto packet = encodeIp(h, payload);

    co_await _kernel.board().cpu().compute(
        _kernel.costs().transportSendPerPacket);
    _stats.sent.add();

    if (*dst_cab == self) {
        onPacket(std::move(packet), false);
        co_return true;
    }
    const topo::Route &route = directory.route(self, *dst_cab);
    co_return co_await dl.sendPacket(route, std::move(packet),
                                     datalink::SwitchMode::packet);
}

void
IpLayer::onPacket(sim::PacketView &&packet, bool corrupted)
{
    sim::PacketView payload;
    auto h = decodeIp(packet, payload);
    if (!h || corrupted || packet.corrupted()) {
        _stats.badHeader.add();
        return;
    }
    if (h->dst != address()) {
        _stats.misrouted.add();
        return;
    }
    _stats.received.add();
    auto it = handlers.find(h->protocol);
    if (it == handlers.end()) {
        _stats.unknownProto.add();
        return;
    }
    // Charge the receive path, then hand up.  The payload view is
    // captured by value (descriptors only, no bytes).
    Ipv4Header header = *h;
    auto &handler = it->second;
    _kernel.board().cpu().chargeThen(
        _kernel.costs().transportRecvPerPacket,
        [&handler, header, payload = std::move(payload)]() mutable {
            handler(header, std::move(payload));
        });
}

} // namespace nectar::inet
