/**
 * @file
 * IPv4 over the Nectar-net.
 *
 * Section 6.2.2: "The current transport protocols are simple and
 * Nectar-specific.  We plan to experiment with the corresponding
 * Internet protocols (IP, TCP, and VMTP) over Nectar in the coming
 * year."  This module is that experiment: real IPv4 headers (with
 * header checksum) are encapsulated in Nectar datalink packets, so
 * standard transports (inet::Tcp) can run on the CAB.
 *
 * Address mapping: CAB address N lives at 10.0.(N>>8).(N&0xFF).
 */

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "cabos/kernel.hh"
#include "datalink/datalink.hh"
#include "sim/component.hh"
#include "transport/directory.hh"

namespace nectar::inet {

using sim::Tick;

/** An IPv4 address. */
using IpAddress = std::uint32_t;

/** The 10.0.0.0/16 mapping of CAB addresses. */
inline IpAddress
ipOfCab(transport::CabAddress cab)
{
    return 0x0A000000u | cab;
}

/** Inverse mapping; nullopt if outside 10.0.0.0/16. */
inline std::optional<transport::CabAddress>
cabOfIp(IpAddress ip)
{
    if ((ip & 0xFFFF0000u) != 0x0A000000u)
        return std::nullopt;
    return static_cast<transport::CabAddress>(ip & 0xFFFF);
}

/** IP protocol numbers used here. */
namespace proto {
constexpr std::uint8_t tcp = 6;
constexpr std::uint8_t udp = 17;
} // namespace proto

/** An IPv4 header (no options; IHL = 5). */
struct Ipv4Header
{
    std::uint8_t tos = 0;
    std::uint16_t totalLength = 0;
    std::uint16_t id = 0;
    std::uint8_t ttl = 64;
    std::uint8_t protocol = 0;
    std::uint16_t checksum = 0;
    IpAddress src = 0;
    IpAddress dst = 0;

    static constexpr std::uint32_t wireSize = 20;
};

/** Serialize the header and chain @p pl behind it (shared, not
 *  copied); computes the header checksum. */
sim::PacketView encodeIp(Ipv4Header h, const sim::PacketView &pl);

/**
 * Parse and verify an IPv4 packet.  The payload comes back as a
 * zero-copy slice of @p packet.
 * @return Header, or nullopt on malformed/bad-checksum input.
 */
std::optional<Ipv4Header> decodeIp(const sim::PacketView &packet,
                                   sim::PacketView &payload);

/** IP layer statistics. */
struct IpStats
{
    sim::Counter sent;
    sim::Counter received;
    sim::Counter badHeader;     ///< Checksum/length failures.
    sim::Counter unknownProto;  ///< No handler registered.
    sim::Counter misrouted;     ///< Arrived at the wrong CAB.
};

/**
 * The per-CAB IP layer: encapsulates datagrams in Nectar datalink
 * packets and demultiplexes arrivals by protocol number.
 *
 * Takes over the site datalink's receive handler: a CAB running the
 * Internet suite does not simultaneously run the Nectar-native
 * transport (exactly the configuration choice a real deployment
 * would make).
 */
class IpLayer : public sim::Component
{
  public:
    IpLayer(cabos::Kernel &kernel, datalink::Datalink &dl,
            transport::NetworkDirectory &directory,
            transport::CabAddress self);

    IpAddress address() const { return ipOfCab(self); }
    IpStats &stats() { return _stats; }
    cabos::Kernel &kernel() { return _kernel; }

    /** Register the upper-layer handler for an IP protocol number. */
    void
    registerProtocol(std::uint8_t protocol,
                     std::function<void(const Ipv4Header &,
                                        sim::PacketView &&)>
                         handler)
    {
        handlers[protocol] = std::move(handler);
    }

    /**
     * Send one IP datagram (must fit the Nectar MTU; the CAB path
     * never needs IP fragmentation because circuit switching carries
     * large packets natively — a deliberate design shortcut that a
     * production stack would replace with fragmentation).
     */
    sim::Task<bool> send(IpAddress dst, std::uint8_t protocol,
                         sim::PacketView payload);

  private:
    void onPacket(sim::PacketView &&packet, bool corrupted);

    cabos::Kernel &_kernel;
    datalink::Datalink &dl;
    transport::NetworkDirectory &directory;
    transport::CabAddress self;
    std::uint16_t nextId = 1;
    IpStats _stats;
    std::map<std::uint8_t,
             std::function<void(const Ipv4Header &, sim::PacketView &&)>>
        handlers;
};

} // namespace nectar::inet
