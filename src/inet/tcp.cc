#include "tcp.hh"

#include <algorithm>

#include "cab/checksum.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

namespace nectar::inet {

namespace {

void
put16(std::vector<std::uint8_t> &v, std::size_t off, std::uint16_t x)
{
    v[off] = static_cast<std::uint8_t>(x >> 8);
    v[off + 1] = static_cast<std::uint8_t>(x);
}

void
put32(std::vector<std::uint8_t> &v, std::size_t off, std::uint32_t x)
{
    v[off] = static_cast<std::uint8_t>(x >> 24);
    v[off + 1] = static_cast<std::uint8_t>(x >> 16);
    v[off + 2] = static_cast<std::uint8_t>(x >> 8);
    v[off + 3] = static_cast<std::uint8_t>(x);
}

std::uint16_t
get16(const std::uint8_t *v, std::size_t off)
{
    return static_cast<std::uint16_t>((v[off] << 8) | v[off + 1]);
}

std::uint32_t
get32(const std::uint8_t *v, std::size_t off)
{
    return (static_cast<std::uint32_t>(v[off]) << 24) |
           (static_cast<std::uint32_t>(v[off + 1]) << 16) |
           (static_cast<std::uint32_t>(v[off + 2]) << 8) |
           static_cast<std::uint32_t>(v[off + 3]);
}

/** Checksum the 20-byte header (field zeroed) + payload segments. */
std::uint16_t
segmentChecksum(const std::uint8_t *hdr, const sim::PacketView &pl)
{
    cab::ChecksumAccumulator acc;
    acc.feed(hdr, TcpHeader::wireSize);
    pl.forEachSegment([&](const std::uint8_t *p, std::size_t n) {
        acc.feed(p, n);
    });
    return acc.finish();
}

/** Parks the coroutine on a socket's waiter list. */
struct ParkOn
{
    std::vector<std::coroutine_handle<>> &list;

    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<> h) { list.push_back(h); }
    void await_resume() const {}
};

} // namespace

const char *
tcpStateName(TcpState s)
{
    switch (s) {
      case TcpState::closed: return "CLOSED";
      case TcpState::listen: return "LISTEN";
      case TcpState::synSent: return "SYN_SENT";
      case TcpState::synRcvd: return "SYN_RCVD";
      case TcpState::established: return "ESTABLISHED";
      case TcpState::finWait1: return "FIN_WAIT_1";
      case TcpState::finWait2: return "FIN_WAIT_2";
      case TcpState::closeWait: return "CLOSE_WAIT";
      case TcpState::lastAck: return "LAST_ACK";
    }
    return "?";
}

sim::PacketView
encodeTcp(TcpHeader h, const sim::PacketView &pl)
{
    std::vector<std::uint8_t> hdr(TcpHeader::wireSize, 0);
    put16(hdr, 0, h.srcPort);
    put16(hdr, 2, h.dstPort);
    put32(hdr, 4, h.seq);
    put32(hdr, 8, h.ack);
    hdr[12] = 0x50; // data offset 5 words
    hdr[13] = h.flags;
    put16(hdr, 14, h.window);
    // checksum at 16 computed with the field zero; the payload is
    // streamed behind the header, never copied.
    put16(hdr, 16, segmentChecksum(hdr.data(), pl));
    return sim::PacketView::concat(sim::PacketView(std::move(hdr)), pl);
}

std::optional<TcpHeader>
decodeTcp(const sim::PacketView &packet, sim::PacketView &payload)
{
    if (packet.size() < TcpHeader::wireSize)
        return std::nullopt;

    std::uint8_t hdr[TcpHeader::wireSize];
    packet.read(0, hdr, TcpHeader::wireSize);
    if (hdr[12] != 0x50)
        return std::nullopt; // options unsupported

    TcpHeader h;
    h.srcPort = get16(hdr, 0);
    h.dstPort = get16(hdr, 2);
    h.seq = get32(hdr, 4);
    h.ack = get32(hdr, 8);
    h.flags = hdr[13];
    h.window = get16(hdr, 14);
    h.checksum = get16(hdr, 16);

    payload = packet.slice(TcpHeader::wireSize);
    hdr[16] = 0;
    hdr[17] = 0;
    if (segmentChecksum(hdr, payload) != h.checksum) {
        payload = sim::PacketView{};
        return std::nullopt;
    }
    return h;
}

// --------------------------------------------------------------------
// Tcp layer.
// --------------------------------------------------------------------

Tcp::Tcp(IpLayer &ip, const TcpConfig &config)
    : sim::Component(ip.kernel().eventq(),
                     ip.kernel().board().name() + ".tcp"),
      _ip(ip), cfg(config)
{
    ip.registerProtocol(
        proto::tcp,
        [this](const Ipv4Header &h, sim::PacketView &&pl) {
            onIp(h, std::move(pl));
        });
}

void
Tcp::sendRst(const Ipv4Header &iph, const TcpHeader &h)
{
    TcpHeader rst;
    rst.srcPort = h.dstPort;
    rst.dstPort = h.srcPort;
    rst.seq = h.ack;
    rst.ack = h.seq + 1;
    rst.flags = tcpflags::rst | tcpflags::ack;
    _stats.resetsSent.add();
    sim::spawn([](IpLayer &ip, IpAddress dst,
                  sim::PacketView seg) -> sim::Task<void> {
        co_await ip.send(dst, proto::tcp, std::move(seg));
    }(_ip, iph.src, encodeTcp(rst, sim::PacketView{})));
}

void
Tcp::onIp(const Ipv4Header &iph, sim::PacketView &&pl)
{
    sim::PacketView payload;
    auto h = decodeTcp(pl, payload);
    if (!h) {
        _stats.badSegments.add();
        return;
    }
    _stats.segmentsReceived.add();

    auto it = sockets.find(key(h->dstPort, iph.src, h->srcPort));
    if (it != sockets.end()) {
        it->second->segmentArrived(*h, std::move(payload));
        return;
    }

    // No connection: a SYN to a listening port creates one.
    auto lit = listeners.find(h->dstPort);
    if (lit != listeners.end() && (h->flags & tcpflags::syn) &&
        !lit->second.pending) {
        auto sock = std::make_unique<TcpSocket>(*this, h->dstPort,
                                                iph.src, h->srcPort);
        TcpSocket *raw = sock.get();
        sockets.emplace(key(h->dstPort, iph.src, h->srcPort),
                        std::move(sock));
        raw->iss = nextIss;
        nextIss += 64000;
        raw->sndUna = raw->sndNxt = raw->iss;
        raw->rcvNxt = h->seq + 1;
        raw->_state = TcpState::synRcvd;
        raw->transmitSegment(tcpflags::syn | tcpflags::ack, raw->iss,
                             {});
        raw->sndNxt = raw->iss + 1; // SYN consumes one sequence number
        raw->armTimer();
        _stats.connectionsAccepted.add();
        lit->second.pending = raw;
        return;
    }
    if (!(h->flags & tcpflags::rst))
        sendRst(iph, *h);
}

sim::Task<TcpSocket *>
Tcp::accept(std::uint16_t port)
{
    Listener &l = listeners[port];
    TcpSocket *sock = nullptr;
    for (;;) {
        if (l.pending &&
            l.pending->state() == TcpState::established) {
            sock = l.pending;
            l.pending = nullptr;
            break;
        }
        co_await ParkOn{l.waiters};
    }
    co_return sock;
}

sim::Task<TcpSocket *>
Tcp::connect(IpAddress dst, std::uint16_t dstPort)
{
    std::uint16_t lport = nextEphemeral++;
    auto sock = std::make_unique<TcpSocket>(*this, lport, dst, dstPort);
    TcpSocket *raw = sock.get();
    sockets.emplace(key(lport, dst, dstPort), std::move(sock));

    raw->iss = nextIss;
    nextIss += 64000;
    raw->sndUna = raw->sndNxt = raw->iss;
    raw->_state = TcpState::synSent;
    raw->transmitSegment(tcpflags::syn, raw->iss, {});
    raw->sndNxt = raw->iss + 1;
    raw->armTimer();
    _stats.connectionsOpened.add();

    // Wait for establishment or failure, bounded by connectTimeout.
    sim::EventId deadline = eventq().scheduleIn(
        cfg.connectTimeout, [raw] {
            if (raw->state() == TcpState::synSent) {
                raw->fail();
            }
        });
    while (raw->state() == TcpState::synSent && !raw->failed)
        co_await ParkOn{raw->waiters};
    eventq().cancel(deadline);

    if (raw->failed)
        co_return nullptr;
    co_return raw;
}

// --------------------------------------------------------------------
// TcpSocket.
// --------------------------------------------------------------------

TcpSocket::TcpSocket(Tcp &tcp, std::uint16_t localPort, IpAddress peerIp,
                     std::uint16_t peerPort)
    : tcp(tcp), lport(localPort), peer(peerIp), pport(peerPort)
{
}

void
TcpSocket::wakeAll()
{
    auto list = std::move(waiters);
    waiters.clear();
    for (auto h : list) {
        tcp.eventq().scheduleIn(sim::ticks::immediate,
                                [h] { h.resume(); },
                                sim::EventPriority::software);
    }
    // Listener-side accept() parks on the listener, not the socket.
    auto lit = tcp.listeners.find(lport);
    if (lit != tcp.listeners.end()) {
        auto ws = std::move(lit->second.waiters);
        lit->second.waiters.clear();
        for (auto h : ws) {
            tcp.eventq().scheduleIn(sim::ticks::immediate,
                                [h] { h.resume(); },
                                    sim::EventPriority::software);
        }
    }
}

void
TcpSocket::fail()
{
    failed = true;
    _state = TcpState::closed;
    if (tcp.eventq().pending(timer))
        tcp.eventq().cancel(timer);
    inflight.clear();
    wakeAll();
}

void
TcpSocket::transmitSegment(std::uint8_t flags, std::uint32_t seq,
                           sim::PacketView payload)
{
    TcpHeader h;
    h.srcPort = lport;
    h.dstPort = pport;
    h.seq = seq;
    h.ack = rcvNxt;
    h.flags = flags;
    h.window = static_cast<std::uint16_t>(
        std::min<std::uint32_t>(tcp.cfg.window, 0xFFFF));
    tcp._stats.segmentsSent.add();
    sim::spawn([](IpLayer &ip, IpAddress dst,
                  sim::PacketView seg) -> sim::Task<void> {
        co_await ip.send(dst, proto::tcp, std::move(seg));
    }(tcp._ip, peer, encodeTcp(h, payload)));
    // The retransmission store keeps a view of the payload, not a
    // second copy of the bytes.
    if ((flags & (tcpflags::syn | tcpflags::fin)) || !payload.empty())
        inflight[seq] = {flags, std::move(payload)};
}

void
TcpSocket::armTimer()
{
    if (tcp.eventq().pending(timer))
        tcp.eventq().cancel(timer);
    timer = tcp.eventq().scheduleIn(tcp.cfg.rto,
                                    [this] { onTimeout(); },
                                    sim::EventPriority::software);
}

void
TcpSocket::onTimeout()
{
    if (inflight.empty())
        return;
    if (++timeouts > tcp.cfg.maxRetransmits) {
        fail();
        return;
    }
    for (auto &[seq, seg] : inflight) {
        tcp._stats.retransmissions.add();
        TcpHeader h;
        h.srcPort = lport;
        h.dstPort = pport;
        h.seq = seq;
        h.ack = rcvNxt;
        h.flags = seg.first; // resend with the original flags
        h.window = static_cast<std::uint16_t>(
            std::min<std::uint32_t>(tcp.cfg.window, 0xFFFF));
        tcp._stats.segmentsSent.add();
        sim::spawn([](IpLayer &ip, IpAddress dst,
                      sim::PacketView segv) -> sim::Task<void> {
            co_await ip.send(dst, proto::tcp, std::move(segv));
        }(tcp._ip, peer, encodeTcp(h, seg.second)));
    }
    armTimer();
}

void
TcpSocket::pump()
{
    if (_state != TcpState::established &&
        _state != TcpState::closeWait)
        return;
    // Window: at most cfg.window unacknowledged bytes.
    while (!sendBuf.empty() &&
           sndNxt - sndUna < tcp.cfg.window) {
        std::uint32_t n = std::min<std::uint32_t>(
            {tcp.cfg.mss,
             static_cast<std::uint32_t>(sendBuf.size()),
             tcp.cfg.window - (sndNxt - sndUna)});
        std::vector<std::uint8_t> seg(sendBuf.begin(),
                                      sendBuf.begin() + n);
        sendBuf.erase(sendBuf.begin(), sendBuf.begin() + n);
        transmitSegment(tcpflags::ack | tcpflags::psh, sndNxt,
                        std::move(seg));
        sndNxt += n;
        armTimer();
    }
    // A queued FIN goes out once the buffer drains.
    if (finQueued && sendBuf.empty()) {
        finQueued = false;
        finSeq = sndNxt;
        transmitSegment(tcpflags::fin | tcpflags::ack, sndNxt, {});
        sndNxt += 1;
        if (_state == TcpState::established)
            _state = TcpState::finWait1;
        else if (_state == TcpState::closeWait)
            _state = TcpState::lastAck;
        armTimer();
    }
}

void
TcpSocket::segmentArrived(const TcpHeader &h,
                          sim::PacketView &&payload)
{
    if (h.flags & tcpflags::rst) {
        fail();
        return;
    }

    // --- Handshake transitions.
    if (_state == TcpState::synSent) {
        if ((h.flags & tcpflags::syn) && (h.flags & tcpflags::ack) &&
            h.ack == iss + 1) {
            rcvNxt = h.seq + 1;
            sndUna = h.ack;
            inflight.clear();
            timeouts = 0;
            if (tcp.eventq().pending(timer))
                tcp.eventq().cancel(timer);
            _state = TcpState::established;
            transmitSegment(tcpflags::ack, sndNxt, {});
            wakeAll();
        }
        return;
    }
    if (_state == TcpState::synRcvd) {
        if ((h.flags & tcpflags::ack) && h.ack == iss + 1) {
            sndUna = h.ack;
            inflight.clear();
            timeouts = 0;
            if (tcp.eventq().pending(timer))
                tcp.eventq().cancel(timer);
            _state = TcpState::established;
            wakeAll();
            // Fall through: the ACK may carry data.
        } else {
            return;
        }
    }

    // --- ACK processing.
    if (h.flags & tcpflags::ack) {
        if (h.ack > sndUna && h.ack <= sndNxt) {
            sndUna = h.ack;
            timeouts = 0;
            while (!inflight.empty() &&
                   inflight.begin()->first < sndUna) {
                // Fully acked only if seq + len <= sndUna.
                auto it = inflight.begin();
                std::uint32_t len = std::max<std::uint32_t>(
                    1, static_cast<std::uint32_t>(it->second.second
                                                      .size()));
                if (it->first + len <= sndUna)
                    inflight.erase(it);
                else
                    break;
            }
            if (inflight.empty()) {
                if (tcp.eventq().pending(timer))
                    tcp.eventq().cancel(timer);
            } else {
                armTimer();
            }
            if (_state == TcpState::finWait1 && sndUna == sndNxt)
                _state = TcpState::finWait2;
            if (_state == TcpState::lastAck && sndUna == sndNxt) {
                _state = TcpState::closed;
            }
            wakeAll();
            pump();
        }
    }

    // --- In-order data.
    bool advanced = false;
    if (!payload.empty()) {
        if (h.seq == rcvNxt) {
            // The byte stream boundary: segment bytes merge into the
            // in-order receive buffer here (a counted copy).
            payload.forEachSegment(
                [&](const std::uint8_t *p, std::size_t n) {
                    recvBuf.insert(recvBuf.end(), p, p + n);
                });
            sim::accountCopy(payload.size());
            rcvNxt += static_cast<std::uint32_t>(payload.size());
            advanced = true;
            wakeAll();
        }
        // Out-of-order / duplicate: drop; the ack below resynchronizes.
    }

    // --- FIN.
    if ((h.flags & tcpflags::fin) && h.seq == rcvNxt) {
        rcvNxt += 1;
        peerClosed = true;
        advanced = true;
        if (_state == TcpState::established)
            _state = TcpState::closeWait;
        else if (_state == TcpState::finWait2)
            _state = TcpState::closed; // TIME_WAIT elided
        wakeAll();
    }

    if (advanced || !payload.empty())
        transmitSegment(tcpflags::ack, sndNxt, {});
}

sim::Task<bool>
TcpSocket::send(std::vector<std::uint8_t> data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        if (failed || (_state != TcpState::established &&
                       _state != TcpState::closeWait))
            co_return false;
        // Bounded send buffer: one window's worth of unsent bytes.
        if (sendBuf.size() >= tcp.cfg.window) {
            co_await ParkOn{waiters};
            continue;
        }
        std::size_t n = std::min<std::size_t>(
            tcp.cfg.window - sendBuf.size(), data.size() - off);
        sendBuf.insert(sendBuf.end(), data.begin() + off,
                       data.begin() + off + n);
        off += n;
        pump();
    }
    // Block until everything is acknowledged (write-through
    // semantics keep the examples and benches simple to reason
    // about).
    bool blocked = false;
    while (!failed && (sndUna != sndNxt || !sendBuf.empty())) {
        blocked = true;
        co_await ParkOn{waiters};
    }
    if (blocked) {
        auto &k = tcp._ip.kernel();
        k.noteThreadSwitch();
        co_await k.board().cpu().compute(k.costs().threadSwitch);
    }
    co_return !failed;
}

sim::Task<std::vector<std::uint8_t>>
TcpSocket::receive(std::size_t maxBytes)
{
    bool blocked = false;
    while (recvBuf.empty() && !peerClosed && !failed) {
        blocked = true;
        co_await ParkOn{waiters};
    }
    if (blocked) {
        // A blocked reader is a kernel thread being rescheduled:
        // charge the context switch, as the native stack does.
        auto &k = tcp._ip.kernel();
        k.noteThreadSwitch();
        co_await k.board().cpu().compute(k.costs().threadSwitch);
    }
    std::size_t n = std::min(maxBytes, recvBuf.size());
    std::vector<std::uint8_t> out(recvBuf.begin(),
                                  recvBuf.begin() + n);
    recvBuf.erase(recvBuf.begin(), recvBuf.begin() + n);
    co_return out;
}

sim::Task<void>
TcpSocket::close()
{
    if (_state == TcpState::established ||
        _state == TcpState::closeWait) {
        finQueued = true;
        pump();
    }
    while (!failed && _state != TcpState::closed &&
           _state != TcpState::finWait2)
        co_await ParkOn{waiters};
}

} // namespace nectar::inet
