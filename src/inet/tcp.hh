/**
 * @file
 * TCP over IP over the Nectar-net (the Section 6.2.2 experiment).
 *
 * A compact but genuine TCP: three-way handshake, byte-oriented
 * sequence/acknowledgment numbers, sliding window, retransmission
 * with a fixed RTO, and FIN teardown.  Runs on the CAB, demonstrating
 * that the CAB is "a flexible environment for the efficient
 * implementation of protocols" (Section 5.1) beyond the
 * Nectar-specific suite.
 *
 * Documented simplifications relative to 1989-era BSD TCP: fixed
 * retransmission timeout (no Karn/Jacobson estimation), no congestion
 * control (contemporary with its invention), no delayed acks, no
 * urgent data, and TIME_WAIT collapses immediately to CLOSED.
 */

#pragma once

#include <deque>
#include <map>
#include <optional>

#include "inet/ip.hh"
#include "sim/coro.hh"

namespace nectar::inet {

/** TCP header flags. */
namespace tcpflags {
constexpr std::uint8_t fin = 0x01;
constexpr std::uint8_t syn = 0x02;
constexpr std::uint8_t rst = 0x04;
constexpr std::uint8_t psh = 0x08;
constexpr std::uint8_t ack = 0x10;
} // namespace tcpflags

/** A TCP header (no options). */
struct TcpHeader
{
    std::uint16_t srcPort = 0;
    std::uint16_t dstPort = 0;
    std::uint32_t seq = 0;
    std::uint32_t ack = 0;
    std::uint8_t flags = 0;
    std::uint16_t window = 0;
    std::uint16_t checksum = 0;

    static constexpr std::uint32_t wireSize = 20;
};

/**
 * Serialize header + payload (checksum over both).  The payload is
 * chained behind the freshly built header, never copied.
 */
sim::PacketView encodeTcp(TcpHeader h, const sim::PacketView &pl);

/**
 * Parse and verify; nullopt on malformed/bad checksum.  On success
 * @p payload is a zero-copy slice of @p packet past the header.
 */
std::optional<TcpHeader> decodeTcp(const sim::PacketView &packet,
                                   sim::PacketView &payload);

/** Connection states (RFC 793 subset). */
enum class TcpState {
    closed,
    listen,
    synSent,
    synRcvd,
    established,
    finWait1,
    finWait2,
    closeWait,
    lastAck,
};

const char *tcpStateName(TcpState s);

struct TcpConfig
{
    std::uint32_t mss = 512;          ///< Max segment payload.
    std::uint32_t window = 8 * 1024;  ///< Fixed advertised window.
    Tick rto = 2 * sim::ticks::ms;    ///< Fixed retransmission timeout.
    int maxRetransmits = 8;
    Tick connectTimeout = 20 * sim::ticks::ms;
};

struct TcpStats
{
    sim::Counter segmentsSent;
    sim::Counter segmentsReceived;
    sim::Counter retransmissions;
    sim::Counter badSegments;
    sim::Counter resetsSent;
    sim::Counter connectionsOpened;
    sim::Counter connectionsAccepted;
};

class Tcp;

/**
 * One TCP connection endpoint.
 */
class TcpSocket
{
  public:
    TcpSocket(Tcp &tcp, std::uint16_t localPort, IpAddress peerIp,
              std::uint16_t peerPort);

    TcpState state() const { return _state; }
    std::uint16_t localPort() const { return lport; }
    IpAddress peerAddress() const { return peer; }
    std::uint16_t peerPort() const { return pport; }

    /**
     * Append bytes to the send stream; suspends while the send
     * buffer is full.  Returns false if the connection failed.
     */
    sim::Task<bool> send(std::vector<std::uint8_t> data);

    /**
     * Receive up to @p maxBytes in-order stream bytes; suspends until
     * at least one byte (or EOF) is available.  An empty vector means
     * the peer closed (EOF).
     */
    sim::Task<std::vector<std::uint8_t>> receive(std::size_t maxBytes);

    /** Bytes available to read right now. */
    std::size_t available() const { return recvBuf.size(); }

    /** Graceful close: sends FIN; resolves when the FIN is acked. */
    sim::Task<void> close();

    /** Bytes not yet acknowledged by the peer. */
    std::uint32_t
    unacked() const
    {
        return sndNxt - sndUna;
    }

  private:
    friend class Tcp;

    void segmentArrived(const TcpHeader &h,
                        sim::PacketView &&payload);
    void transmitSegment(std::uint8_t flags,
                         std::uint32_t seq,
                         sim::PacketView payload);
    /** Send whatever the window permits from the send buffer. */
    void pump();
    void armTimer();
    void onTimeout();
    void fail();
    void wakeAll();

    Tcp &tcp;
    std::uint16_t lport;
    IpAddress peer;
    std::uint16_t pport;

    TcpState _state = TcpState::closed;
    bool failed = false;

    // Send side: sndUna..sndNxt outstanding; buffer holds unsent
    // bytes at stream offset sndNxt.
    std::uint32_t iss = 0;
    std::uint32_t sndUna = 0;
    std::uint32_t sndNxt = 0;
    std::deque<std::uint8_t> sendBuf;
    bool finQueued = false;
    std::uint32_t finSeq = 0;
    sim::EventId timer = sim::invalidEventId;
    int timeouts = 0;
    /**
     * Retransmission store: stream-offset -> segment payload.  Holds
     * views onto the segment buffers, so keeping a copy for
     * retransmit costs nothing until a timeout actually fires.
     */
    std::map<std::uint32_t, std::pair<std::uint8_t, sim::PacketView>>
        inflight;

    // Receive side.
    std::uint32_t rcvNxt = 0;
    std::deque<std::uint8_t> recvBuf;
    bool peerClosed = false;

    std::vector<std::coroutine_handle<>> waiters;
};

/**
 * The per-CAB TCP layer: port table and demultiplexer.
 */
class Tcp : public sim::Component
{
  public:
    explicit Tcp(IpLayer &ip, const TcpConfig &config = {});

    const TcpConfig &config() const { return cfg; }
    TcpStats &stats() { return _stats; }
    IpLayer &ip() { return _ip; }

    /**
     * Passive open: accept one connection on @p port.
     * Resolves to the established socket.
     */
    sim::Task<TcpSocket *> accept(std::uint16_t port);

    /** Active open to (dstIp, dstPort); nullptr on timeout. */
    sim::Task<TcpSocket *> connect(IpAddress dst,
                                   std::uint16_t dstPort);

  private:
    friend class TcpSocket;

    static std::uint64_t
    key(std::uint16_t lport, IpAddress peer, std::uint16_t pport)
    {
        return (static_cast<std::uint64_t>(lport) << 48) |
               (static_cast<std::uint64_t>(pport) << 32) | peer;
    }

    void onIp(const Ipv4Header &h, sim::PacketView &&pl);
    void sendRst(const Ipv4Header &iph, const TcpHeader &h);

    IpLayer &_ip;
    TcpConfig cfg;
    TcpStats _stats;
    std::uint16_t nextEphemeral = 0x8000;
    std::uint32_t nextIss = 1000;

    std::map<std::uint64_t, std::unique_ptr<TcpSocket>> sockets;
    /** Listening ports and their pending-accept wakeups. */
    struct Listener
    {
        TcpSocket *pending = nullptr;
        std::vector<std::coroutine_handle<>> waiters;
    };
    std::map<std::uint16_t, Listener> listeners;
};

} // namespace nectar::inet
