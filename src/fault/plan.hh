/**
 * @file
 * Declarative fault plans for chaos campaigns.
 *
 * The Nectar prototype was built to survive a machine room: cables
 * get pulled, optical links take bursts of errors, and boards get
 * reseated while the network stays up.  A FaultPlan scripts such an
 * episode as timed events — link down/up, Gilbert–Elliott burst
 * windows, HUB ports wedging, CAB crash and restart — which the
 * ChaosController executes deterministically from the plan's seed.
 * The same plan and seed always produce the same campaign.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hub/hub.hh"
#include "phys/fiber.hh"
#include "sim/types.hh"

namespace nectar::fault {

/** What a fault event does to its target. */
enum class Action
{
    hubLinkDown,    ///< Inter-HUB link at (hub, port) goes dark.
    hubLinkUp,      ///< ... and comes back.
    cabLinkDown,    ///< A CAB's attachment fibers go dark.
    cabLinkUp,      ///< ... and come back.
    burstStart,     ///< Gilbert-Elliott burst window opens on a
                    ///< CAB attachment fiber.
    burstEnd,       ///< ... and closes.
    hubPortStuck,   ///< A HUB I/O port stops moving traffic.
    hubPortRestore, ///< ... and recovers.
    cabCrash,       ///< A CAB's transport loses all protocol state.
    cabRestart,     ///< ... and boots fresh.
};

const char *actionName(Action a);

/** Which direction of a CAB attachment a fiber-level fault afflicts. */
enum class Direction
{
    toHub,   ///< The CAB's transmit fiber (asymmetric data loss).
    fromHub, ///< The HUB-to-CAB fiber (ack/response loss).
    both,
};

/** One scheduled fault. */
struct FaultEvent
{
    sim::Tick at = 0;
    Action action = Action::hubLinkDown;

    int hub = -1;                      ///< hubLink*/hubPort* target.
    hub::PortId port = hub::noPort;    ///< ... and its port.
    int site = -1;                     ///< cab*/burst* target (site
                                       ///< index in the NectarSystem).
    Direction dir = Direction::both;   ///< burst* fiber selection.
    phys::GilbertElliott burst;        ///< burstStart parameters.
};

/**
 * A named, seeded script of fault events.  Build with the fluent
 * helpers; order does not matter (the controller schedules by time).
 */
struct FaultPlan
{
    std::string name = "campaign";
    std::uint64_t seed = 1;
    std::vector<FaultEvent> events;

    FaultPlan &
    hubLinkDown(sim::Tick at, int hub, hub::PortId port)
    {
        events.push_back({at, Action::hubLinkDown, hub, port, -1,
                          Direction::both, {}});
        return *this;
    }

    FaultPlan &
    hubLinkUp(sim::Tick at, int hub, hub::PortId port)
    {
        events.push_back({at, Action::hubLinkUp, hub, port, -1,
                          Direction::both, {}});
        return *this;
    }

    FaultPlan &
    cabLinkDown(sim::Tick at, int site)
    {
        events.push_back({at, Action::cabLinkDown, -1, hub::noPort,
                          site, Direction::both, {}});
        return *this;
    }

    FaultPlan &
    cabLinkUp(sim::Tick at, int site)
    {
        events.push_back({at, Action::cabLinkUp, -1, hub::noPort,
                          site, Direction::both, {}});
        return *this;
    }

    /** Open a burst window on a CAB attachment from @p from to
     *  @p to.  @p dir picks the afflicted fiber(s). */
    FaultPlan &
    burstWindow(sim::Tick from, sim::Tick to, int site, Direction dir,
                const phys::GilbertElliott &model)
    {
        events.push_back({from, Action::burstStart, -1, hub::noPort,
                          site, dir, model});
        events.push_back({to, Action::burstEnd, -1, hub::noPort,
                          site, dir, {}});
        return *this;
    }

    FaultPlan &
    hubPortStuck(sim::Tick at, int hub, hub::PortId port)
    {
        events.push_back({at, Action::hubPortStuck, hub, port, -1,
                          Direction::both, {}});
        return *this;
    }

    FaultPlan &
    hubPortRestore(sim::Tick at, int hub, hub::PortId port)
    {
        events.push_back({at, Action::hubPortRestore, hub, port, -1,
                          Direction::both, {}});
        return *this;
    }

    FaultPlan &
    cabCrash(sim::Tick at, int site)
    {
        events.push_back({at, Action::cabCrash, -1, hub::noPort,
                          site, Direction::both, {}});
        return *this;
    }

    FaultPlan &
    cabRestart(sim::Tick at, int site)
    {
        events.push_back({at, Action::cabRestart, -1, hub::noPort,
                          site, Direction::both, {}});
        return *this;
    }
};

} // namespace nectar::fault
