/**
 * @file
 * Randomized fault-plan generation for chaos fuzzing.
 *
 * A PlanGenerator synthesizes seeded FaultPlans against a system
 * *shape* (how many hubs, which inter-HUB links, which sites) at a
 * tunable intensity.  Every fault is an *episode*: a fault event
 * paired with its healing event (link flap, burst window, stuck-port
 * window, crash+restart), so a generated plan always returns the
 * system to full health before the campaign's horizon — what makes
 * the oracle's drain-to-quiescence check meaningful.  Episodes on one
 * target never overlap (the controller's plan state machines accept
 * every generated plan under PlanPolicy::strict); episodes on
 * different targets overlap freely, which is where the interesting
 * schedules live.
 *
 * The same shape + config + seed always yields the same plan.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "fault/plan.hh"

namespace nectar::nectarine {
class NectarSystem;
}

namespace nectar::topo {
struct TopologyDescription;
}

namespace nectar::fault {

/** The fault-relevant structure of a system. */
struct SystemShape
{
    int numHubs = 0;
    /** One (hub, port) handle per inter-HUB link (the A side). */
    std::vector<std::pair<int, hub::PortId>> hubLinks;
    /** Per site: the (hub, port) its CAB attaches to. */
    std::vector<std::pair<int, hub::PortId>> cabPorts;

    /** Extract the shape of a live system. */
    static SystemShape of(nectarine::NectarSystem &sys);

    /**
     * The shape a description-built system will have, without
     * building it: trunks and CABs in declared order, exactly as
     * NectarSystem::fromDescription wires them.
     */
    static SystemShape
    ofDescription(const topo::TopologyDescription &d);
};

/** Tuning knobs for generated plans. */
struct GeneratorConfig
{
    /** Fault episodes start in [0, horizon); heals may land later
     *  but never past horizon + maxEpisode. */
    sim::Tick horizon = 6 * sim::ticks::ms;

    /** Episode duration bounds (fault to heal). */
    sim::Tick minEpisode = 100 * sim::ticks::us;
    sim::Tick maxEpisode = 2 * sim::ticks::ms;

    /** Mean episodes per plan; scaled by intensity, >= 1 enforced. */
    double episodesMean = 4.0;

    /** Linear scale on episodesMean (the campaign "temperature"). */
    double intensity = 1.0;

    /** Burst-window loss-rate bounds (Gilbert-Elliott). */
    double minBurstLoss = 0.02;
    double maxBurstLoss = 0.5;
    double meanBurstBytes = 16.0;

    /** Disallow crashing site 0 (keeps a designated coordinator
     *  alive; off by default). */
    bool spareSiteZero = false;
};

/**
 * Seeded generator: generate(seed) is a pure function of (shape,
 * config, seed).
 */
class PlanGenerator
{
  public:
    PlanGenerator(const SystemShape &shape,
                  const GeneratorConfig &config = {});

    /** Synthesize one plan.  Covers every Action kind the shape
     *  supports (hub-link faults need inter-HUB links). */
    FaultPlan generate(std::uint64_t seed) const;

  private:
    SystemShape shape;
    GeneratorConfig cfg;
};

} // namespace nectar::fault
