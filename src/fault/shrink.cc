#include "fault/shrink.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace nectar::fault {

namespace {

struct Budget
{
    int remaining;
    int spent = 0;

    bool
    charge()
    {
        if (remaining <= 0)
            return false;
        --remaining;
        ++spent;
        return true;
    }
};

FaultPlan
withEvents(const FaultPlan &base, std::vector<FaultEvent> events)
{
    FaultPlan p = base;
    p.events = std::move(events);
    return p;
}

/**
 * Classic ddmin on the event list: try removing chunks (and keeping
 * only chunks) at doubling granularity until single-event removals
 * no longer stick or the budget runs out.
 */
std::vector<FaultEvent>
ddmin(const FaultPlan &base, std::vector<FaultEvent> events,
      const std::function<bool(const FaultPlan &)> &fails,
      Budget &budget, bool &oneMinimal)
{
    oneMinimal = false;
    std::size_t granularity = 2;
    while (events.size() >= 2) {
        granularity = std::min(granularity, events.size());
        std::size_t chunk =
            (events.size() + granularity - 1) / granularity;
        bool reduced = false;

        for (std::size_t start = 0;
             start < events.size() && !reduced; start += chunk) {
            // Complement: everything but [start, start+chunk).
            std::vector<FaultEvent> candidate;
            candidate.reserve(events.size());
            for (std::size_t i = 0; i < events.size(); ++i)
                if (i < start || i >= start + chunk)
                    candidate.push_back(events[i]);
            if (candidate.size() == events.size())
                continue;
            if (!budget.charge())
                return events;
            if (fails(withEvents(base, candidate))) {
                events = std::move(candidate);
                granularity = std::max<std::size_t>(2, granularity - 1);
                reduced = true;
            }
        }
        if (reduced)
            continue;
        if (granularity >= events.size()) {
            // Single-event removals all passed: 1-minimal.
            oneMinimal = true;
            break;
        }
        granularity = std::min(events.size(), granularity * 2);
    }
    return events;
}

/**
 * Binary-search each event's time toward zero: the latest heals
 * close in on their faults (window shortening) and onsets move to
 * the earliest tick that still fails (time tightening).
 */
void
tightenTimes(const FaultPlan &base, std::vector<FaultEvent> &events,
             const std::function<bool(const FaultPlan &)> &fails,
             Budget &budget, sim::Tick granularity)
{
    for (std::size_t i = 0; i < events.size(); ++i) {
        sim::Tick hi = events[i].at; // known-failing
        if (hi == 0)
            continue;
        sim::Tick lo = 0; // candidate floor (maybe passing)

        auto failsAt = [&](sim::Tick t) {
            std::vector<FaultEvent> candidate = events;
            candidate[i].at = t;
            return fails(withEvents(base, candidate));
        };

        if (!budget.charge())
            return;
        if (failsAt(0)) {
            events[i].at = 0;
            continue;
        }
        while (hi - lo > granularity) {
            sim::Tick mid = lo + (hi - lo) / 2;
            if (!budget.charge()) {
                events[i].at = hi;
                return;
            }
            if (failsAt(mid))
                hi = mid;
            else
                lo = mid;
        }
        events[i].at = hi;
    }
}

} // namespace

ShrinkResult
shrinkPlan(const FaultPlan &failing,
           const std::function<bool(const FaultPlan &)> &fails,
           const ShrinkConfig &cfg)
{
    if (!fails(failing))
        sim::fatal("shrinkPlan: input plan does not fail the "
                   "predicate");

    Budget budget{cfg.maxRuns};
    ShrinkResult res;
    res.plan = failing;

    bool oneMinimal = false;
    auto events =
        ddmin(failing, failing.events, fails, budget, oneMinimal);

    tightenTimes(failing, events, fails, budget, cfg.timeGranularity);

    // Tightening can strand events the failure no longer needs; one
    // more elimination sweep keeps the result 1-minimal.
    if (events.size() >= 2) {
        bool swept;
        do {
            swept = false;
            for (std::size_t i = 0; i < events.size(); ++i) {
                std::vector<FaultEvent> candidate;
                candidate.reserve(events.size() - 1);
                for (std::size_t j = 0; j < events.size(); ++j)
                    if (j != i)
                        candidate.push_back(events[j]);
                if (!budget.charge()) {
                    swept = false;
                    break;
                }
                if (fails(withEvents(failing, candidate))) {
                    events = std::move(candidate);
                    swept = true;
                    oneMinimal = false;
                    break;
                }
            }
            if (!swept && events.size() >= 1)
                oneMinimal = true;
        } while (swept && events.size() >= 2);
    }

    res.plan = withEvents(failing, std::move(events));
    res.plan.name = failing.name + "-min";
    res.runs = budget.spent;
    res.oneMinimal = oneMinimal;
    return res;
}

} // namespace nectar::fault
