/**
 * @file
 * Campaign reports: what a fault campaign did and what survived it.
 *
 * The report aggregates transport, routing, and fiber statistics
 * across every site of the system after (or during) a campaign, and
 * formats deterministically: running the same seeded plan twice must
 * produce byte-identical reports.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace nectar::fault {

/** Snapshot of system health after a chaos campaign. */
struct CampaignReport
{
    std::string name;
    std::uint64_t seed = 0;

    /** One line per executed fault event. */
    struct Entry
    {
        sim::Tick at = 0;
        std::string what;
    };
    std::vector<Entry> log;

    // Message accounting (summed over all sites).
    std::uint64_t messagesSent = 0;
    std::uint64_t messagesDelivered = 0;
    std::uint64_t sendFailures = 0;      ///< Reported-failed sends.
    std::uint64_t messagesRecovered = 0; ///< Succeeded after timeouts.
    std::uint64_t retransmissions = 0;
    std::uint64_t rtoBackoffs = 0;
    std::uint64_t karnSuppressed = 0;
    std::uint64_t flowResyncs = 0;
    std::uint64_t staleAcks = 0;
    std::uint64_t flowEpochBumps = 0;      ///< Sender flow epochs reset.
    std::uint64_t mcastMemberFailures = 0; ///< Multicast member fail-outs.

    // Routing.
    std::uint64_t reroutes = 0;   ///< Route changes after link events.
    std::uint64_t unroutable = 0; ///< Transmissions with no path.

    // Fiber-level damage.
    std::uint64_t burstDrops = 0; ///< Items lost to burst windows.
    std::uint64_t downDrops = 0;  ///< Items lost to downed links.
    std::uint64_t crashDrops = 0; ///< Packets into crashed CABs.

    // Low-level recovery machinery.
    std::uint64_t readyTimeouts = 0; ///< Datalink presumed-lost readies.
    std::uint64_t stuckDrops = 0;    ///< HUB blocked-head watchdog drops.
    std::uint64_t readyRearms = 0;   ///< HUB ready bits re-armed.

    /** Plan events removed by PlanPolicy::normalize (see chaos.hh). */
    std::uint64_t planEventsDropped = 0;

    // Time-to-recover distribution (first timeout to renewed ack
    // progress, ticks).
    std::uint64_t recoveries = 0;
    double recoveryP50 = 0;
    double recoveryP99 = 0;

    /** Deterministic multi-line rendering. */
    std::string format() const;
};

} // namespace nectar::fault
