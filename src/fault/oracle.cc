#include "fault/oracle.hh"

#include <sstream>

namespace nectar::fault {

namespace {

std::string
msgName(transport::CabAddress src, transport::CabAddress dst,
        std::uint16_t dstMailbox, std::uint32_t msgId)
{
    std::ostringstream os;
    os << "cab" << src << "->cab" << dst << ".mb" << dstMailbox
       << " msg" << msgId;
    return os.str();
}

} // namespace

void
DeliveryOracle::violate(const std::string &what)
{
    if (_violations.size() < maxViolations)
        _violations.push_back(what);
    else
        ++_dropped;
}

// ----- transport::DeliveryProbe -------------------------------------

void
DeliveryOracle::onReliableSend(transport::CabAddress src,
                               transport::CabAddress dst,
                               std::uint16_t dstMailbox,
                               std::uint32_t msgId, std::size_t)
{
    std::lock_guard<std::mutex> lock(_mutex);
    ++_reliableSends;
    SendRec &rec = sends[key(src, dst, msgId)];
    if (rec.reliable && rec.outcome == Outcome::pending) {
        // The same (src, dst, msgId) can't enter the send path twice:
        // msgId allocation is monotonic per sender.
        violate("duplicate send registration: " +
                msgName(src, dst, dstMailbox, msgId));
        return;
    }
    rec.dstMailbox = dstMailbox;
    rec.reliable = true;
    rec.outcome = Outcome::pending;
}

void
DeliveryOracle::onReliableOutcome(transport::CabAddress src,
                                  transport::CabAddress dst,
                                  std::uint16_t dstMailbox,
                                  std::uint32_t msgId, bool ok)
{
    std::lock_guard<std::mutex> lock(_mutex);
    auto it = sends.find(key(src, dst, msgId));
    if (it == sends.end() || !it->second.reliable) {
        violate("outcome for unknown send: " +
                msgName(src, dst, dstMailbox, msgId));
        return;
    }
    SendRec &rec = it->second;
    if (rec.outcome != Outcome::pending) {
        violate("second outcome for " +
                msgName(src, dst, dstMailbox, msgId));
        return;
    }
    rec.outcome = ok ? Outcome::ok : Outcome::failedSend;
    if (ok && rec.deliveries == 0) {
        // The transport acknowledges only after delivery, so an
        // ok-outcome with no delivery on record is silent loss.
        violate("silent loss: ok-reported send never delivered: " +
                msgName(src, dst, dstMailbox, msgId));
    }
}

void
DeliveryOracle::onDatagramSend(transport::CabAddress src,
                               transport::CabAddress dst,
                               std::uint16_t dstMailbox,
                               std::uint32_t msgId)
{
    std::lock_guard<std::mutex> lock(_mutex);
    ++_datagramSends;
    SendRec &rec = sends[key(src, dst, msgId)];
    rec.dstMailbox = dstMailbox;
    rec.reliable = false;
    rec.outcome = Outcome::ok; // best-effort: no outcome to await
}

void
DeliveryOracle::onDeliver(transport::CabAddress src,
                          transport::CabAddress dst,
                          std::uint16_t dstMailbox,
                          std::uint32_t msgId, bool reliable,
                          std::size_t)
{
    std::lock_guard<std::mutex> lock(_mutex);
    if (reliable)
        ++_reliableDelivered;
    else
        ++_datagramDelivered;

    auto it = sends.find(key(src, dst, msgId));
    if (it == sends.end()) {
        violate("phantom delivery (never sent): " +
                msgName(src, dst, dstMailbox, msgId));
        return;
    }
    SendRec &rec = it->second;
    std::uint32_t epoch = 0;
    auto be = bootEpoch.find(dst);
    if (be != bootEpoch.end())
        epoch = be->second;

    if (rec.deliveries > 0 && rec.deliverEpoch == epoch &&
        rec.epochDeliveries > 0) {
        violate("duplicate delivery (same receiver boot): " +
                msgName(src, dst, dstMailbox, msgId));
    }
    if (rec.deliverEpoch != epoch) {
        rec.deliverEpoch = epoch;
        rec.epochDeliveries = 0;
    }
    ++rec.deliveries;
    ++rec.epochDeliveries;
}

void
DeliveryOracle::onCrash(transport::CabAddress addr)
{
    std::lock_guard<std::mutex> lock(_mutex);
    // A crash wipes the receiver's mailboxes and duplicate-
    // suppression state: deliveries made before it no longer count
    // against the at-most-once budget.
    ++bootEpoch[addr];
}

void
DeliveryOracle::onRestart(transport::CabAddress)
{
}

// ----- collective::CollectiveProbe ----------------------------------

void
DeliveryOracle::onCollectiveStart(collective::GroupId gid, int rank)
{
    std::lock_guard<std::mutex> lock(_mutex);
    ++_collectiveStarts;
    ++openOps[(static_cast<std::uint64_t>(gid) << 32) |
              static_cast<std::uint32_t>(rank)];
}

void
DeliveryOracle::onCollectiveEnd(collective::GroupId gid, int rank,
                                bool ok, std::uint8_t error,
                                std::uint32_t startEpoch,
                                std::uint32_t endEpoch)
{
    std::lock_guard<std::mutex> lock(_mutex);
    ++_collectiveEnds;
    auto k = (static_cast<std::uint64_t>(gid) << 32) |
             static_cast<std::uint32_t>(rank);
    if (--openOps[k] < 0)
        violate("collective end without start: group " +
                std::to_string(gid) + " rank " + std::to_string(rank));

    auto ctx = [&] {
        return "group " + std::to_string(gid) + " rank " +
               std::to_string(rank) + " (error " +
               std::to_string(error) + ")";
    };
    if (ok && error != 0)
        violate("collective ok with error set: " + ctx());
    if (!ok) {
        ++_collectiveFails;
        if (error == 0)
            violate("collective failed without error: " + ctx());
        if (endEpoch < startEpoch)
            violate("collective epoch went backwards: " + ctx());
        // timeout / memberFailed / epochChanged promise the failure
        // was published: the epoch must have moved.
        constexpr std::uint8_t timeout = 1, memberFailed = 2,
                               epochChanged = 3;
        if ((error == timeout || error == memberFailed ||
             error == epochChanged) &&
            endEpoch <= startEpoch)
            violate("collective failure without epoch bump: " + ctx());
    }
}

void
DeliveryOracle::onEpochBump(collective::GroupId gid,
                            std::uint32_t newEpoch)
{
    std::lock_guard<std::mutex> lock(_mutex);
    ++_epochBumps;
    std::uint32_t &last = lastEpoch[gid];
    if (newEpoch <= last)
        violate("non-monotonic epoch bump: group " +
                std::to_string(gid) + " to " +
                std::to_string(newEpoch));
    last = newEpoch;
}

// ----- verdict ------------------------------------------------------

void
DeliveryOracle::finish()
{
    std::lock_guard<std::mutex> lock(_mutex);
    if (finished)
        return;
    finished = true;

    for (const auto &[k, rec] : sends) {
        if (rec.reliable && rec.outcome == Outcome::pending) {
            auto src = static_cast<transport::CabAddress>(k >> 48);
            auto dst =
                static_cast<transport::CabAddress>((k >> 32) & 0xffff);
            auto msgId = static_cast<std::uint32_t>(k & 0xffffffffu);
            violate("wedged: send never resolved: " +
                    msgName(src, dst, rec.dstMailbox, msgId));
        }
    }
    for (const auto &[k, open] : openOps) {
        if (open > 0)
            violate("wedged: collective never terminated: group " +
                    std::to_string(static_cast<std::uint32_t>(k >> 32)) +
                    " rank " +
                    std::to_string(static_cast<std::uint32_t>(k)));
    }
}

std::string
DeliveryOracle::summary() const
{
    std::ostringstream os;
    os << "oracle: reliable " << _reliableDelivered << "/"
       << _reliableSends << " datagram " << _datagramDelivered << "/"
       << _datagramSends << " collectives " << _collectiveEnds << "/"
       << _collectiveStarts << " (failed " << _collectiveFails
       << ") violations "
       << (_violations.size() + static_cast<std::size_t>(_dropped));
    return os.str();
}

} // namespace nectar::fault
