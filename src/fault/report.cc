#include "report.hh"

#include <sstream>

namespace nectar::fault {

std::string
CampaignReport::format() const
{
    // Percentiles render as whole ticks: every value below comes from
    // integer counters or tick samples, so the text is byte-stable
    // across identical runs.
    std::ostringstream os;
    os << "campaign " << name << " seed=" << seed << "\n";
    for (const auto &e : log)
        os << "  [" << e.at << "] " << e.what << "\n";
    os << "events executed    " << log.size() << "\n"
       << "messages sent      " << messagesSent << "\n"
       << "messages delivered " << messagesDelivered << "\n"
       << "send failures      " << sendFailures << "\n"
       << "recovered          " << messagesRecovered << "\n"
       << "retransmissions    " << retransmissions << "\n"
       << "rto backoffs       " << rtoBackoffs << "\n"
       << "karn suppressed    " << karnSuppressed << "\n"
       << "flow resyncs       " << flowResyncs << "\n"
       << "stale acks         " << staleAcks << "\n"
       << "flow epoch bumps   " << flowEpochBumps << "\n"
       << "mcast member fails " << mcastMemberFailures << "\n"
       << "reroutes           " << reroutes << "\n"
       << "unroutable sends   " << unroutable << "\n"
       << "burst drops        " << burstDrops << "\n"
       << "down-link drops    " << downDrops << "\n"
       << "crash drops        " << crashDrops << "\n"
       << "ready timeouts     " << readyTimeouts << "\n"
       << "stuck drops        " << stuckDrops << "\n"
       << "ready re-arms      " << readyRearms << "\n"
       << "plan events dropped " << planEventsDropped << "\n"
       << "recoveries         " << recoveries << "\n"
       << "recovery p50 ns    "
       << static_cast<std::uint64_t>(recoveryP50) << "\n"
       << "recovery p99 ns    "
       << static_cast<std::uint64_t>(recoveryP99) << "\n";
    return os.str();
}

} // namespace nectar::fault
