#include "fault/generate.hh"

#include <algorithm>
#include <map>
#include <string>

#include "nectarine/system.hh"
#include "topo/description.hh"
#include "sim/logging.hh"
#include "sim/random.hh"

namespace nectar::fault {

SystemShape
SystemShape::of(nectarine::NectarSystem &sys)
{
    SystemShape s;
    s.numHubs = sys.topo().numHubs();
    for (const auto &link : sys.topo().hubLinks())
        s.hubLinks.emplace_back(link.a, link.pa);
    for (std::size_t i = 0; i < sys.siteCount(); ++i) {
        const auto &at = sys.site(i).at;
        s.cabPorts.emplace_back(at.hubIndex, at.port);
    }
    return s;
}

SystemShape
SystemShape::ofDescription(const topo::TopologyDescription &d)
{
    SystemShape s;
    s.numHubs = d.numHubs();
    for (const topo::TrunkDecl &t : d.trunks)
        s.hubLinks.emplace_back(t.a, t.pa);
    for (const topo::CabDecl &c : d.cabs)
        s.cabPorts.emplace_back(c.hub, c.port);
    return s;
}

namespace {

/** Episode kinds; each expands to a fault/heal event pair. */
enum class Episode
{
    hubLinkFlap,  // hubLinkDown + hubLinkUp
    cabLinkFlap,  // cabLinkDown + cabLinkUp
    burstWindow,  // burstStart + burstEnd
    stuckPort,    // hubPortStuck + hubPortRestore
    crashRestart, // cabCrash + cabRestart
};

/** Per-target key for the non-overlap bookkeeping. */
std::string
targetKey(Episode kind, int a, int b)
{
    return std::to_string(static_cast<int>(kind)) + ":" +
           std::to_string(a) + ":" + std::to_string(b);
}

} // namespace

PlanGenerator::PlanGenerator(const SystemShape &shape_,
                             const GeneratorConfig &config)
    : shape(shape_), cfg(config)
{
    if (shape.cabPorts.empty())
        sim::fatal("PlanGenerator: shape has no sites");
    if (cfg.minEpisode <= 0 || cfg.maxEpisode < cfg.minEpisode)
        sim::fatal("PlanGenerator: bad episode bounds");
    if (cfg.horizon <= 0)
        sim::fatal("PlanGenerator: bad horizon");
}

FaultPlan
PlanGenerator::generate(std::uint64_t seed) const
{
    sim::Random rng(seed, 0x6e656374 /* decorrelate from workloads */);

    FaultPlan plan;
    plan.name = "fuzz-" + std::to_string(seed);
    plan.seed = seed;

    // Episode kinds available on this shape, in a fixed order so the
    // kind distribution is a pure function of the shape.
    std::vector<Episode> kinds = {Episode::cabLinkFlap,
                                  Episode::burstWindow,
                                  Episode::stuckPort,
                                  Episode::crashRestart};
    if (!shape.hubLinks.empty())
        kinds.insert(kinds.begin(), Episode::hubLinkFlap);

    int episodes = std::max(
        1, static_cast<int>(cfg.episodesMean * cfg.intensity + 0.5));

    // Per-target busy horizon: an episode on a target must start
    // after the previous one on the same target healed (plus a gap),
    // keeping every generated plan strict-valid.  Different targets
    // overlap freely.
    std::map<std::string, sim::Tick> busyUntil;
    const sim::Tick gap = 10 * sim::ticks::us;

    for (int n = 0; n < episodes; ++n) {
        Episode kind =
            kinds[rng.below(static_cast<std::uint32_t>(kinds.size()))];
        sim::Tick start = static_cast<sim::Tick>(
            rng.below(static_cast<std::uint32_t>(
                std::min<sim::Tick>(cfg.horizon, 1ll << 31))));
        sim::Tick len =
            cfg.minEpisode +
            static_cast<sim::Tick>(rng.below(static_cast<std::uint32_t>(
                std::min<sim::Tick>(cfg.maxEpisode - cfg.minEpisode + 1,
                                    1ll << 31))));

        switch (kind) {
          case Episode::hubLinkFlap: {
            auto [h, p] = shape.hubLinks[rng.below(
                static_cast<std::uint32_t>(shape.hubLinks.size()))];
            auto &busy = busyUntil[targetKey(kind, h, p)];
            start = std::max(start, busy);
            plan.hubLinkDown(start, h, p);
            plan.hubLinkUp(start + len, h, p);
            busy = start + len + gap;
            break;
          }
          case Episode::cabLinkFlap: {
            int s = static_cast<int>(rng.below(
                static_cast<std::uint32_t>(shape.cabPorts.size())));
            auto &busy = busyUntil[targetKey(kind, s, 0)];
            start = std::max(start, busy);
            plan.cabLinkDown(start, s);
            plan.cabLinkUp(start + len, s);
            busy = start + len + gap;
            break;
          }
          case Episode::burstWindow: {
            int s = static_cast<int>(rng.below(
                static_cast<std::uint32_t>(shape.cabPorts.size())));
            // Track per fiber: a "both" window conflicts with either.
            Direction dir = static_cast<Direction>(rng.below(3));
            auto &toHub = busyUntil[targetKey(kind, s, 0)];
            auto &fromHub = busyUntil[targetKey(kind, s, 1)];
            if (dir != Direction::fromHub)
                start = std::max(start, toHub);
            if (dir != Direction::toHub)
                start = std::max(start, fromHub);
            double loss = cfg.minBurstLoss +
                          rng.uniform() *
                              (cfg.maxBurstLoss - cfg.minBurstLoss);
            plan.burstWindow(start, start + len, s, dir,
                             phys::GilbertElliott::forLossRate(
                                 loss, cfg.meanBurstBytes));
            if (dir != Direction::fromHub)
                toHub = start + len + gap;
            if (dir != Direction::toHub)
                fromHub = start + len + gap;
            break;
          }
          case Episode::stuckPort: {
            // Stick a CAB attachment port: inter-HUB outages are
            // already covered by hubLinkFlap, and CAB ports are where
            // the blocked-head watchdog earns its keep.
            int s = static_cast<int>(rng.below(
                static_cast<std::uint32_t>(shape.cabPorts.size())));
            auto [h, p] = shape.cabPorts[static_cast<std::size_t>(s)];
            auto &busy = busyUntil[targetKey(kind, h, p)];
            start = std::max(start, busy);
            plan.hubPortStuck(start, h, p);
            plan.hubPortRestore(start + len, h, p);
            busy = start + len + gap;
            break;
          }
          case Episode::crashRestart: {
            std::uint32_t lo = cfg.spareSiteZero ? 1 : 0;
            std::uint32_t nSites =
                static_cast<std::uint32_t>(shape.cabPorts.size());
            if (lo >= nSites)
                lo = 0;
            int s = static_cast<int>(lo + rng.below(nSites - lo));
            auto &busy = busyUntil[targetKey(kind, s, 0)];
            start = std::max(start, busy);
            plan.cabCrash(start, s);
            plan.cabRestart(start + len, s);
            busy = start + len + gap;
            break;
          }
        }
    }

    // Sort by time for readability; the controller schedules by time
    // anyway, and stable order keeps same-tick events in emit order.
    std::stable_sort(plan.events.begin(), plan.events.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.at < b.at;
                     });
    return plan;
}

} // namespace nectar::fault
