#include "fault/fuzz.hh"

#include <algorithm>
#include <memory>
#include <utility>

#include "collectives/communicator.hh"
#include "collectives/group.hh"
#include "fault/chaos.hh"
#include "fault/oracle.hh"
#include "nectarine/nectarine.hh"
#include "nectarine/system.hh"
#include "serving/serving.hh"
#include "sim/coro.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"
#include "sim/random.hh"
#include "topo/topofile.hh"

namespace nectar::fault {

namespace {

using sim::Task;
using sim::Tick;
using sim::ticks::ms;
using sim::ticks::us;

/** Receiving mailbox id on every site. */
constexpr std::uint16_t fuzzMailbox = 20;

/** Per-site traffic source; owned by runCase so frames outlive it. */
struct SiteTraffic
{
    transport::Transport *tp = nullptr;
    transport::CabAddress reliableDst = 0;
    transport::CabAddress datagramDst = 0;
    int reliable = 0;
    int datagrams = 0;
    std::uint64_t seed = 0;
    std::size_t minBytes = 64;
    std::size_t maxBytes = 4096;
    Tick spread = 0; ///< Sends start uniformly inside [0, spread).

    Task<void>
    run()
    {
        sim::Random rng(seed, 0x7472616666696bull);
        for (int i = 0; i < reliable + datagrams; ++i) {
            co_await sim::Delay(tp->eventq(),
                                static_cast<Tick>(rng.below(
                                    static_cast<std::uint32_t>(
                                        std::max<Tick>(1, spread)))));
            std::size_t bytes =
                minBytes +
                rng.below(static_cast<std::uint32_t>(
                    maxBytes - minBytes + 1));
            std::vector<std::uint8_t> payload(bytes,
                                              static_cast<std::uint8_t>(i));
            if (i < reliable) {
                co_await tp->sendReliable(reliableDst, fuzzMailbox,
                                          std::move(payload));
            } else {
                co_await tp->sendDatagram(datagramDst, fuzzMailbox,
                                          std::move(payload));
            }
        }
    }
};

/**
 * Bug-injection wrapper (FuzzConfig::injectDeliveryBug): forwards
 * every hook, but reports reliable deliveries falling inside one of
 * the plan's burst windows twice — a deterministic duplicate the
 * oracle must catch and the shrinker must reduce to one window.
 */
class BurstDoubleReporter : public transport::DeliveryProbe
{
  public:
    BurstDoubleReporter(transport::DeliveryProbe &next,
                        const FaultPlan &plan, sim::EventQueue &eq)
        : next(next), eq(eq)
    {
        // Pair each burstStart with the next burstEnd on the same
        // site; an unmatched start is an open-ended window.
        std::vector<const FaultEvent *> order;
        for (const auto &e : plan.events)
            if (e.action == Action::burstStart ||
                e.action == Action::burstEnd)
                order.push_back(&e);
        std::stable_sort(order.begin(), order.end(),
                         [](const FaultEvent *a, const FaultEvent *b) {
                             return a->at < b->at;
                         });
        std::vector<std::pair<int, Tick>> open; // (site, start)
        for (const auto *e : order) {
            if (e->action == Action::burstStart) {
                open.emplace_back(e->site, e->at);
            } else {
                for (auto it = open.begin(); it != open.end(); ++it) {
                    if (it->first == e->site) {
                        windows.emplace_back(it->second, e->at);
                        open.erase(it);
                        break;
                    }
                }
            }
        }
        for (const auto &[site, start] : open)
            windows.emplace_back(start, sim::maxTick);
    }

    void
    onReliableSend(transport::CabAddress src, transport::CabAddress dst,
                   std::uint16_t mb, std::uint32_t msgId,
                   std::size_t bytes) override
    {
        next.onReliableSend(src, dst, mb, msgId, bytes);
    }
    void
    onReliableOutcome(transport::CabAddress src,
                      transport::CabAddress dst, std::uint16_t mb,
                      std::uint32_t msgId, bool ok) override
    {
        next.onReliableOutcome(src, dst, mb, msgId, ok);
    }
    void
    onDatagramSend(transport::CabAddress src, transport::CabAddress dst,
                   std::uint16_t mb, std::uint32_t msgId) override
    {
        next.onDatagramSend(src, dst, mb, msgId);
    }
    void
    onDeliver(transport::CabAddress src, transport::CabAddress dst,
              std::uint16_t mb, std::uint32_t msgId, bool reliable,
              std::size_t bytes) override
    {
        next.onDeliver(src, dst, mb, msgId, reliable, bytes);
        if (!reliable)
            return;
        Tick now = eq.now();
        for (const auto &[from, to] : windows) {
            if (now >= from && now < to) {
                next.onDeliver(src, dst, mb, msgId, reliable, bytes);
                return;
            }
        }
    }
    void onCrash(transport::CabAddress a) override { next.onCrash(a); }
    void onRestart(transport::CabAddress a) override
    {
        next.onRestart(a);
    }

  private:
    transport::DeliveryProbe &next;
    sim::EventQueue &eq;
    std::vector<std::pair<Tick, Tick>> windows;
};

} // namespace

topo::TopologyDescription
harnessDescription(const FuzzConfig &cfg)
{
    switch (cfg.fabric) {
    case FuzzFabric::mesh:
        return topo::describeMesh2D(cfg.rows, cfg.cols,
                                    cfg.cabsPerHub);
    case FuzzFabric::torus:
        return topo::describeTorus2D(cfg.rows, cfg.cols,
                                     cfg.cabsPerHub);
    case FuzzFabric::fattree:
        return topo::describeFatTree(cfg.rows, cfg.cols,
                                     cfg.cabsPerHub);
    case FuzzFabric::file:
        return topo::loadTopologyFile(cfg.topoFile);
    }
    sim::panic("harnessDescription: bad fabric kind");
}

SystemShape
harnessShape(const FuzzConfig &cfg)
{
    // No live system needed: the description carries the shape.
    return SystemShape::ofDescription(harnessDescription(cfg));
}

FuzzResult
runCase(const FaultPlan &plan, const FuzzConfig &cfg)
{
    sim::EventQueue eq;

    nectarine::SiteConfig site;
    site.transport.retransmitTimeout = 300 * us;
    site.transport.maxRetransmits = 5;
    site.transport.maxRto = 2 * ms;

    const topo::TopologyDescription desc = harnessDescription(cfg);
    const bool parallel = cfg.threads > 1;
    if (parallel && cfg.injectDeliveryBug)
        sim::fatal("FuzzConfig: injectDeliveryBug requires the "
                   "single-queue harness (threads <= 1)");
    std::unique_ptr<sim::ParallelEngine> engine;
    std::unique_ptr<nectarine::NectarSystem> sys;
    if (parallel) {
        engine = std::make_unique<sim::ParallelEngine>(desc.numHubs(),
                                                       cfg.threads);
        sys = nectarine::NectarSystem::fromDescription(*engine, desc,
                                                       site);
    } else {
        sys = nectarine::NectarSystem::fromDescription(eq, desc, site);
    }
    const auto n = sys->siteCount();

    DeliveryOracle oracle;
    std::unique_ptr<BurstDoubleReporter> bug;
    if (cfg.injectDeliveryBug) {
        bug = std::make_unique<BurstDoubleReporter>(oracle, plan, eq);
        sys->attachDeliveryProbe(bug.get());
    } else {
        sys->attachDeliveryProbe(&oracle);
    }

    // Per-site receiving mailboxes (messages park; the oracle counts
    // them at delivery time).
    for (std::size_t i = 0; i < n; ++i)
        sys->site(i).kernel->createMailbox("fuzzin", 1 << 20,
                                           fuzzMailbox);

    // Point-to-point traffic: each site streams to its neighbor and
    // fires datagrams two hops over, seeded from the plan.
    std::vector<SiteTraffic> traffic(n);
    for (std::size_t i = 0; i < n; ++i) {
        SiteTraffic &t = traffic[i];
        t.tp = sys->site(i).transport.get();
        t.reliableDst =
            static_cast<transport::CabAddress>((i + 1) % n + 1);
        t.datagramDst =
            static_cast<transport::CabAddress>((i + 2) % n + 1);
        t.reliable = cfg.reliablePerSite;
        t.datagrams = cfg.datagramsPerSite;
        t.seed = plan.seed + i;
        t.minBytes = cfg.minBytes;
        t.maxBytes = std::max(cfg.maxBytes, cfg.minBytes);
        t.spread = 4 * ms;
        sim::spawn(t.run());
    }

    // Collective workload: a group across the first k sites running
    // allreduce + barrier rounds.  Operations may fail under faults —
    // the oracle asserts they terminate cleanly, not that they
    // succeed.
    collective::GroupDirectory groups;
    groups.setProbe(&oracle);
    nectarine::Nectarine api(*sys);
    auto gid = std::make_shared<collective::GroupId>(0);
    int members = std::min<int>(cfg.collectiveMembers,
                                static_cast<int>(n));
    if (members >= 2 && cfg.collectiveRounds > 0) {
        collective::CommunicatorConfig ccfg;
        ccfg.opTimeout = 20 * ms;
        std::vector<nectarine::TaskId> ids;
        auto *groupsp = &groups;
        int rounds = cfg.collectiveRounds;
        for (int r = 0; r < members; ++r) {
            ids.push_back(api.createTask(
                static_cast<std::size_t>(r),
                "fz" + std::to_string(r),
                [groupsp, gid, ccfg, rounds](
                    nectarine::TaskContext &ctx) -> Task<void> {
                    collective::Communicator comm(ctx, *groupsp, *gid,
                                                  ccfg);
                    std::vector<std::uint8_t> data(256,
                                                   std::uint8_t(1));
                    for (int round = 0; round < rounds; ++round) {
                        co_await comm.allreduce(
                            collective::ReduceOp::sum, data);
                        co_await comm.barrier();
                    }
                }));
        }
        *gid = groups.create("fuzz", ids);
    }

    // Serving-load scenario: open-loop RPCs ride the same fabric
    // while the oracle judges the ledgered traffic and the drain.
    // Arrivals are bounded per host so the case still quiesces.
    std::unique_ptr<serving::ServingWorkload> serving;
    if (cfg.servingArrivalsPerSite > 0) {
        serving::ServingConfig scfg;
        scfg.flows = cfg.servingFlows;
        scfg.seed = plan.seed;
        scfg.maxArrivalsPerHost =
            static_cast<std::uint64_t>(cfg.servingArrivalsPerSite);
        scfg.duration = 8 * ms;
        // Pace arrivals so every host's quota lands well inside the
        // window even with fault-induced jitter.
        scfg.offeredRps = static_cast<double>(n) *
                          cfg.servingArrivalsPerSite / 4e-3;
        serving = std::make_unique<serving::ServingWorkload>(*sys,
                                                             scfg);
    }

    ChaosController chaos(*sys, plan, PlanPolicy::normalize,
                          parallel ? ChaosMode::stepped
                                   : ChaosMode::scheduled);
    sim::Tick quiescedAt = 0;
    if (parallel) {
        // Stepped drive: run to just before each fault time, apply
        // the due faults while the engine is single-threaded, repeat;
        // then drain.  runUntil's clock alignment makes the next
        // target always >= every shard's now.
        while (chaos.pendingFaults()) {
            sim::Tick t = chaos.nextFaultAt();
            if (t > 0)
                engine->runUntil(t - 1);
            chaos.applyDueFaults(t);
        }
        engine->run();
        for (int c = 0; c < engine->clusters(); ++c)
            quiescedAt =
                std::max(quiescedAt, engine->queueFor(c).now());
    } else {
        eq.run();
        quiescedAt = eq.now();
    }

    oracle.finish();

    FuzzResult res;
    res.violations = oracle.violations();
    res.oracleSummary = oracle.summary();
    res.report = chaos.report();
    res.quiescedAt = quiescedAt;
    res.reliableSends = oracle.reliableSends();
    res.reliableDeliveries = oracle.reliableDeliveries();
    res.collectiveOps = oracle.collectiveOps();
    res.collectiveFailures = oracle.collectiveFailures();
    res.groupEpochBumps = oracle.groupEpochBumps();
    if (serving) {
        serving::ServingReport sr = serving->report();
        res.servingIssued = sr.issued;
        res.servingCompleted = sr.completed;
        res.servingFailed = sr.failed;
    }
    if (res.quiescedAt > cfg.drainDeadline)
        res.violations.push_back(
            "wedged: system not quiescent by drain deadline (now=" +
            std::to_string(res.quiescedAt) + ")");
    res.passed = res.violations.empty();
    return res;
}

} // namespace nectar::fault
