#include "chaos.hh"

#include <algorithm>
#include <array>
#include <map>
#include <sstream>
#include <utility>

#include "sim/logging.hh"

namespace nectar::fault {

const char *
actionName(Action a)
{
    switch (a) {
      case Action::hubLinkDown: return "hubLinkDown";
      case Action::hubLinkUp: return "hubLinkUp";
      case Action::cabLinkDown: return "cabLinkDown";
      case Action::cabLinkUp: return "cabLinkUp";
      case Action::burstStart: return "burstStart";
      case Action::burstEnd: return "burstEnd";
      case Action::hubPortStuck: return "hubPortStuck";
      case Action::hubPortRestore: return "hubPortRestore";
      case Action::cabCrash: return "cabCrash";
      case Action::cabRestart: return "cabRestart";
    }
    return "?";
}

namespace {

const char *
dirName(Direction d)
{
    switch (d) {
      case Direction::toHub: return "toHub";
      case Direction::fromHub: return "fromHub";
      case Direction::both: return "both";
    }
    return "?";
}

std::string
describe(const FaultEvent &e)
{
    std::ostringstream os;
    os << actionName(e.action);
    switch (e.action) {
      case Action::hubLinkDown:
      case Action::hubLinkUp:
      case Action::hubPortStuck:
      case Action::hubPortRestore:
        os << " hub" << e.hub << ".p" << e.port;
        break;
      case Action::burstStart:
      case Action::burstEnd:
        os << " site" << e.site << " " << dirName(e.dir);
        break;
      case Action::cabLinkDown:
      case Action::cabLinkUp:
      case Action::cabCrash:
      case Action::cabRestart:
        os << " site" << e.site;
        break;
    }
    return os.str();
}

} // namespace

ChaosController::ChaosController(nectarine::NectarSystem &system,
                                 const FaultPlan &faultPlan,
                                 PlanPolicy policy, ChaosMode mode)
    : sys(system), plan(faultPlan),
      tracer(system.eventq(), "chaos." + plan.name)
{
    for (const auto &e : plan.events)
        validate(e);
    checkStateMachines(policy);
    if (mode == ChaosMode::scheduled) {
        for (std::size_t i = 0; i < plan.events.size(); ++i) {
            sys.eventq().schedule(
                plan.events[i].at,
                [this, i] { execute(plan.events[i], i); },
                sim::EventPriority::first);
        }
        return;
    }
    // Stepped: the driver applies events itself, in the same order
    // the queue would have run them (time, plan order within a tick).
    _order.resize(plan.events.size());
    for (std::size_t i = 0; i < _order.size(); ++i)
        _order[i] = i;
    std::stable_sort(_order.begin(), _order.end(),
                     [this](std::size_t a, std::size_t b) {
                         return plan.events[a].at < plan.events[b].at;
                     });
}

sim::Tick
ChaosController::nextFaultAt() const
{
    if (!pendingFaults())
        return sim::maxTick;
    return plan.events[_order[_applied]].at;
}

void
ChaosController::applyDueFaults(sim::Tick t)
{
    while (pendingFaults() &&
           plan.events[_order[_applied]].at <= t) {
        std::size_t i = _order[_applied];
        execute(plan.events[i], i);
        ++_applied;
    }
}

void
ChaosController::checkStateMachines(PlanPolicy policy)
{
    // Walk events in execution order — by time, plan order breaking
    // ties (the event queue is FIFO within one tick and priority) —
    // and track each target's state.  An event that contradicts the
    // state (down-while-down, overlapping burst windows on one fiber,
    // restore-without-fault, ...) is fatal under strict, dropped
    // under normalize.
    std::vector<std::size_t> order(plan.events.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [this](std::size_t a, std::size_t b) {
                         return plan.events[a].at < plan.events[b].at;
                     });

    std::map<std::pair<int, int>, bool> hubLinkDown, portStuck;
    std::map<int, bool> cabDown, cabCrashed;
    // Per-site burst state, one flag per attachment fiber.
    std::map<int, std::array<bool, 2>> bursting; // [toHub, fromHub]

    std::vector<char> drop(plan.events.size(), 0);
    for (std::size_t i : order) {
        const FaultEvent &e = plan.events[i];
        const char *why = nullptr;
        switch (e.action) {
          case Action::hubLinkDown: {
            bool &down = hubLinkDown[{e.hub, e.port}];
            if (down)
                why = "link already down";
            else
                down = true;
            break;
          }
          case Action::hubLinkUp: {
            bool &down = hubLinkDown[{e.hub, e.port}];
            if (!down)
                why = "link not down";
            else
                down = false;
            break;
          }
          case Action::cabLinkDown: {
            bool &down = cabDown[e.site];
            if (down)
                why = "attachment already down";
            else
                down = true;
            break;
          }
          case Action::cabLinkUp: {
            bool &down = cabDown[e.site];
            if (!down)
                why = "attachment not down";
            else
                down = false;
            break;
          }
          case Action::burstStart: {
            auto &b = bursting[e.site];
            bool toHub = e.dir != Direction::fromHub;
            bool fromHub = e.dir != Direction::toHub;
            if ((toHub && b[0]) || (fromHub && b[1])) {
                why = "overlapping burst window";
            } else {
                if (toHub)
                    b[0] = true;
                if (fromHub)
                    b[1] = true;
            }
            break;
          }
          case Action::burstEnd: {
            auto &b = bursting[e.site];
            bool toHub = e.dir != Direction::fromHub;
            bool fromHub = e.dir != Direction::toHub;
            if ((toHub && !b[0]) || (fromHub && !b[1])) {
                why = "no burst window open";
            } else {
                if (toHub)
                    b[0] = false;
                if (fromHub)
                    b[1] = false;
            }
            break;
          }
          case Action::hubPortStuck: {
            bool &stuck = portStuck[{e.hub, e.port}];
            if (stuck)
                why = "port already stuck";
            else
                stuck = true;
            break;
          }
          case Action::hubPortRestore: {
            bool &stuck = portStuck[{e.hub, e.port}];
            if (!stuck)
                why = "port not stuck";
            else
                stuck = false;
            break;
          }
          case Action::cabCrash: {
            bool &crashed = cabCrashed[e.site];
            if (crashed)
                why = "CAB already crashed";
            else
                crashed = true;
            break;
          }
          case Action::cabRestart: {
            bool &crashed = cabCrashed[e.site];
            if (!crashed)
                why = "CAB not crashed";
            else
                crashed = false;
            break;
          }
        }
        if (!why)
            continue;
        if (policy == PlanPolicy::strict)
            sim::fatal("FaultPlan '" + plan.name + "': " + why +
                       " at [" + std::to_string(e.at) + "] " +
                       describe(e));
        drop[i] = 1;
    }

    std::vector<FaultEvent> kept;
    kept.reserve(plan.events.size());
    for (std::size_t i = 0; i < plan.events.size(); ++i) {
        if (drop[i])
            ++dropped;
        else
            kept.push_back(plan.events[i]);
    }
    plan.events = std::move(kept);
}

void
ChaosController::validate(const FaultEvent &e) const
{
    auto needHub = [&] {
        if (e.hub < 0 || e.hub >= sys.topo().numHubs())
            sim::fatal("FaultPlan '" + plan.name + "': bad hub in " +
                       describe(e));
    };
    auto needSite = [&] {
        if (e.site < 0 ||
            e.site >= static_cast<int>(sys.siteCount()))
            sim::fatal("FaultPlan '" + plan.name + "': bad site in " +
                       describe(e));
    };
    switch (e.action) {
      case Action::hubLinkDown:
      case Action::hubLinkUp:
        needHub();
        sys.topo().linkIsUp(e.hub, e.port); // fatal if no link there
        break;
      case Action::hubPortStuck:
      case Action::hubPortRestore:
        needHub();
        sys.topo().hubAt(e.hub).port(e.port); // fatal if out of range
        break;
      case Action::cabLinkDown:
      case Action::cabLinkUp:
      case Action::burstStart:
      case Action::burstEnd:
      case Action::cabCrash:
      case Action::cabRestart:
        needSite();
        break;
    }
}

std::vector<phys::FiberLink *>
ChaosController::siteFibers(int site, Direction dir) const
{
    const auto &at = sys.site(site).at;
    const auto &pair = sys.topo().endpointFibers(at.hubIndex, at.port);
    std::vector<phys::FiberLink *> fibers;
    if (dir == Direction::toHub || dir == Direction::both)
        fibers.push_back(pair.forward);
    if (dir == Direction::fromHub || dir == Direction::both)
        fibers.push_back(pair.reverse);
    return fibers;
}

std::uint64_t
ChaosController::eventSeed(std::size_t index) const
{
    // splitmix64 of (seed, index): decorrelates per-event streams
    // while staying a pure function of the plan.
    std::uint64_t z = plan.seed + 0x9e3779b97f4a7c15ull * (index + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

void
ChaosController::execute(const FaultEvent &e, std::size_t index)
{
    switch (e.action) {
      case Action::hubLinkDown:
        sys.topo().markLinkDown(e.hub, e.port);
        break;
      case Action::hubLinkUp:
        sys.topo().markLinkUp(e.hub, e.port);
        break;
      case Action::cabLinkDown:
        for (auto *f : siteFibers(e.site, Direction::both))
            f->setLinkUp(false);
        break;
      case Action::cabLinkUp: {
        for (auto *f : siteFibers(e.site, Direction::both))
            f->setLinkUp(true);
        // Reattaching re-arms the HUB port's flow control: any ready
        // signal owed across the dead link is gone, and the CAB-side
        // queue it reported on was emptied by the outage.
        const auto &at = sys.site(e.site).at;
        sys.topo().hubAt(at.hubIndex).port(at.port).setReady(true);
        break;
      }
      case Action::burstStart: {
        std::uint64_t sub = 0;
        for (auto *f : siteFibers(e.site, e.dir))
            f->setBurstModel(e.burst, eventSeed(index) + sub++);
        break;
      }
      case Action::burstEnd:
        for (auto *f : siteFibers(e.site, e.dir))
            f->clearBurstModel();
        break;
      case Action::hubPortStuck: {
        auto &port = sys.topo().hubAt(e.hub).port(e.port);
        port.setEnabled(false);
        port.flushQueue();
        break;
      }
      case Action::hubPortRestore: {
        // Supervisor-style revival (svResetPort + svEnablePort): the
        // port re-enables with fresh flow-control state — ready
        // signals swallowed while it was stuck are not coming back.
        auto &port = sys.topo().hubAt(e.hub).port(e.port);
        port.setEnabled(true);
        port.setReady(true);
        break;
      }
      case Action::cabCrash:
        sys.site(e.site).transport->crash();
        break;
      case Action::cabRestart:
        sys.site(e.site).transport->restart();
        break;
    }
    ++executed;
    log.push_back({e.at, describe(e)});
    tracer("fault", describe(e));
}

CampaignReport
ChaosController::report() const
{
    CampaignReport r;
    r.name = plan.name;
    r.seed = plan.seed;
    r.log = log;
    r.planEventsDropped = dropped;

    sim::Histogram recovery;
    for (std::size_t i = 0; i < sys.siteCount(); ++i) {
        const auto &st = sys.site(i).transport->stats();
        r.messagesSent += st.messagesSent.value();
        r.messagesDelivered += st.messagesDelivered.value();
        r.sendFailures += st.sendFailures.value();
        r.messagesRecovered += st.messagesRecovered.value();
        r.retransmissions += st.retransmissions.value();
        r.rtoBackoffs += st.rtoBackoffs.value();
        r.karnSuppressed += st.karnSuppressed.value();
        r.flowResyncs += st.flowResyncs.value();
        r.staleAcks += st.staleAcks.value();
        r.flowEpochBumps += st.flowEpochBumps.value();
        r.mcastMemberFailures += st.mcastMemberFailures.value();
        r.unroutable += st.unroutable.value();
        r.crashDrops += st.crashDrops.value();
        recovery.merge(st.recoveryNs);
        r.readyTimeouts +=
            sys.site(i).datalink->stats().readyTimeouts.value();
    }
    for (int h = 0; h < sys.topo().numHubs(); ++h) {
        const auto &hs = sys.topo().hubAt(h).stats();
        r.stuckDrops += hs.stuckDrops.value();
        r.readyRearms += hs.readyRearms.value();
    }
    r.reroutes = sys.directory().reroutes();
    for (const auto &link : sys.topo().wiring().allLinks()) {
        r.burstDrops += link->itemsDroppedBurst();
        r.downDrops += link->itemsDroppedDown();
    }
    r.recoveries = recovery.count();
    if (r.recoveries) {
        r.recoveryP50 = recovery.percentile(50.0);
        r.recoveryP99 = recovery.percentile(99.0);
    }
    return r;
}

} // namespace nectar::fault
