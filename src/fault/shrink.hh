/**
 * @file
 * Automatic fault-plan minimization (delta debugging).
 *
 * Given a plan that fails some deterministic predicate (typically
 * "the DeliveryOracle rejects the run"), the shrinker searches for a
 * smaller plan that still fails, in three phases:
 *
 *  1. **ddmin over events** (Zeller & Hildebrandt): remove chunks of
 *     events, halving granularity until single-event removal sticks.
 *  2. **Window shortening / time tightening**: for every surviving
 *     event, binary-search its time toward zero — which both pulls
 *     fault onsets earlier and closes fault→heal windows down to
 *     their essential width.
 *  3. A final single-event elimination sweep (phase 2 can make
 *     previously load-bearing events redundant).
 *
 * The predicate re-runs the full deterministic simulation, so "still
 * fails" is exact, not statistical.  Intermediate candidates may
 * violate the plan state machines (a dropped heal leaves a window
 * open); the harness runs them under PlanPolicy::normalize, which
 * keeps every candidate executable.
 */

#pragma once

#include <functional>

#include "fault/plan.hh"

namespace nectar::fault {

/** Shrink budget and knobs. */
struct ShrinkConfig
{
    /** Hard cap on predicate evaluations across all phases. */
    int maxRuns = 300;

    /** Time-tightening stops refining below this granularity. */
    sim::Tick timeGranularity = 50 * sim::ticks::us;
};

/** What the shrinker found. */
struct ShrinkResult
{
    FaultPlan plan;    ///< Smallest failing plan found.
    int runs = 0;      ///< Predicate evaluations spent.
    bool oneMinimal = false; ///< No single event can be removed.
};

/**
 * Minimize @p failing against @p fails (true = still fails).
 *
 * @pre fails(failing) — the input must actually fail; fatal if not.
 * @return a plan with fails(plan) true and, budget permitting, that
 *         is 1-minimal (removing any one event makes it pass).
 */
ShrinkResult
shrinkPlan(const FaultPlan &failing,
           const std::function<bool(const FaultPlan &)> &fails,
           const ShrinkConfig &cfg = {});

} // namespace nectar::fault
