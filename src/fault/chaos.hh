/**
 * @file
 * The chaos controller: executes a FaultPlan against a live system.
 *
 * Fault events are scheduled on the simulation event queue at
 * EventPriority::first, so a fault lands before any protocol work at
 * the same tick — the adversary moves first.  Everything derives
 * deterministically from the plan (including burst-model seeds), so a
 * campaign is exactly reproducible.
 */

#pragma once

#include <cstddef>

#include "fault/plan.hh"
#include "fault/report.hh"
#include "nectarine/system.hh"
#include "sim/trace.hh"

namespace nectar::fault {

/**
 * How the controller treats a plan whose events contradict the
 * per-target state machines (down-while-already-down, overlapping
 * burst windows on one fiber, restore-without-fault, ...).
 */
enum class PlanPolicy
{
    strict,    ///< Fatal error naming the offending event.
    normalize, ///< Drop the offending events (counted in the report).
};

/**
 * How fault events reach the system.
 *
 * `scheduled` (the default) posts each event on the simulation event
 * queue at EventPriority::first.  `stepped` posts nothing: the driver
 * alternates engine.runUntil(nextFaultAt() - 1) with
 * applyDueFaults(), so under the parallel engine every fault mutates
 * shared topology state (link flags, route tables, HUB ports) in the
 * single-threaded gap between drive calls — the same "adversary moves
 * first at tick t" semantics, with no worker racing the mutation.
 */
enum class ChaosMode
{
    scheduled,
    stepped,
};

/** Executes one FaultPlan against one NectarSystem. */
class ChaosController
{
  public:
    /**
     * Validates the plan's targets against the system (fatal on a
     * nonexistent hub, port, or site), checks its event sequence
     * against each target's state machine under @p policy, and — in
     * ChaosMode::scheduled — schedules every surviving event.
     */
    ChaosController(nectarine::NectarSystem &system,
                    const FaultPlan &plan,
                    PlanPolicy policy = PlanPolicy::strict,
                    ChaosMode mode = ChaosMode::scheduled);

    // ----- stepped mode (parallel-engine driver) ---------------------

    /** True while stepped-mode fault events remain unapplied. */
    bool
    pendingFaults() const
    {
        return _applied < _order.size();
    }

    /** Tick of the next unapplied event (sim::maxTick when none). */
    sim::Tick nextFaultAt() const;

    /**
     * Apply every remaining event with time <= @p t, in execution
     * order (time, then plan order).  Call only between engine drive
     * calls — the mutations assume exclusive access.
     */
    void applyDueFaults(sim::Tick t);

    /** Attach a trace sink for per-event records. */
    void attachTracer(sim::TraceSink &sink) { tracer.attach(sink); }

    /** Fault events executed so far. */
    std::size_t eventsExecuted() const { return executed; }

    /** Events removed under PlanPolicy::normalize. */
    std::size_t planEventsDropped() const { return dropped; }

    /**
     * Aggregate a report over the whole system (callable at any
     * point; typically after eventq().run()).
     */
    CampaignReport report() const;

  private:
    void validate(const FaultEvent &e) const;
    void checkStateMachines(PlanPolicy policy);
    void execute(const FaultEvent &e, std::size_t index);

    /** Fibers a site-directed fiber fault applies to. */
    std::vector<phys::FiberLink *>
    siteFibers(int site, Direction dir) const;

    /** Deterministic per-event RNG seed. */
    std::uint64_t eventSeed(std::size_t index) const;

    nectarine::NectarSystem &sys;
    FaultPlan plan;
    sim::Tracer tracer;
    std::size_t executed = 0;
    std::size_t dropped = 0;
    std::vector<CampaignReport::Entry> log;
    /** Stepped mode: event indices in (time, plan order); next to
     *  apply is _order[_applied]. */
    std::vector<std::size_t> _order;
    std::size_t _applied = 0;
};

} // namespace nectar::fault
