/**
 * @file
 * The chaos controller: executes a FaultPlan against a live system.
 *
 * Fault events are scheduled on the simulation event queue at
 * EventPriority::first, so a fault lands before any protocol work at
 * the same tick — the adversary moves first.  Everything derives
 * deterministically from the plan (including burst-model seeds), so a
 * campaign is exactly reproducible.
 */

#pragma once

#include <cstddef>

#include "fault/plan.hh"
#include "fault/report.hh"
#include "nectarine/system.hh"
#include "sim/trace.hh"

namespace nectar::fault {

/**
 * How the controller treats a plan whose events contradict the
 * per-target state machines (down-while-already-down, overlapping
 * burst windows on one fiber, restore-without-fault, ...).
 */
enum class PlanPolicy
{
    strict,    ///< Fatal error naming the offending event.
    normalize, ///< Drop the offending events (counted in the report).
};

/** Executes one FaultPlan against one NectarSystem. */
class ChaosController
{
  public:
    /**
     * Validates the plan's targets against the system (fatal on a
     * nonexistent hub, port, or site), checks its event sequence
     * against each target's state machine under @p policy, and
     * schedules every surviving event.
     */
    ChaosController(nectarine::NectarSystem &system,
                    const FaultPlan &plan,
                    PlanPolicy policy = PlanPolicy::strict);

    /** Attach a trace sink for per-event records. */
    void attachTracer(sim::TraceSink &sink) { tracer.attach(sink); }

    /** Fault events executed so far. */
    std::size_t eventsExecuted() const { return executed; }

    /** Events removed under PlanPolicy::normalize. */
    std::size_t planEventsDropped() const { return dropped; }

    /**
     * Aggregate a report over the whole system (callable at any
     * point; typically after eventq().run()).
     */
    CampaignReport report() const;

  private:
    void validate(const FaultEvent &e) const;
    void checkStateMachines(PlanPolicy policy);
    void execute(const FaultEvent &e, std::size_t index);

    /** Fibers a site-directed fiber fault applies to. */
    std::vector<phys::FiberLink *>
    siteFibers(int site, Direction dir) const;

    /** Deterministic per-event RNG seed. */
    std::uint64_t eventSeed(std::size_t index) const;

    nectarine::NectarSystem &sys;
    FaultPlan plan;
    sim::Tracer tracer;
    std::size_t executed = 0;
    std::size_t dropped = 0;
    std::vector<CampaignReport::Entry> log;
};

} // namespace nectar::fault
