/**
 * @file
 * DeliveryOracle: end-to-end correctness checking for chaos fuzzing.
 *
 * The oracle is a global send/deliver ledger implementing the
 * transport DeliveryProbe and the collectives CollectiveProbe, so one
 * object observes every reliable and datagram message and every
 * collective operation across the whole system.  It checks:
 *
 *  - **No phantom deliveries**: every delivered (src, dst, msgId) was
 *    sent.
 *  - **No duplicates**: a reliable message reaches a destination at
 *    most once per receiver *boot epoch* (a CAB crash wipes the
 *    receiver's duplicate-suppression state together with the mailbox
 *    holding the first copy, so one redelivery after a crash is the
 *    protocol working as designed — a second within one boot is not).
 *  - **No silent loss for acked traffic**: a reliable send reported
 *    ok was delivered.  A send reported *failed* may have delivered
 *    zero or one time — the final ack may be what was lost — which is
 *    exactly the at-most-once ambiguity the paper's protocol admits.
 *  - **Collectives terminate cleanly**: every started operation ends;
 *    a failed operation carries an error, and a failure blamed on a
 *    peer (timeout / memberFailed / epochChanged) shows the group
 *    epoch advanced past the operation's start.  Epoch bumps are
 *    strictly monotonic.
 *  - **Quiescence (wedge detection)**: at finish() — called after the
 *    run's drain deadline, once every fault has healed — no reliable
 *    send is still awaiting its outcome and no collective is still
 *    open.  A violation here means something wedged.
 *
 * RPC traffic is not checked: request retry is at-least-once by
 * design.  All bookkeeping uses ordered containers keyed by integers,
 * so violation order is deterministic.
 */

#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "collectives/group.hh"
#include "transport/probe.hh"

namespace nectar::fault {

/** The global ledger; attach via NectarSystem::attachDeliveryProbe
 *  and GroupDirectory::setProbe. */
class DeliveryOracle : public transport::DeliveryProbe,
                       public collective::CollectiveProbe
{
  public:
    DeliveryOracle() = default;

    // ----- transport::DeliveryProbe ---------------------------------
    void onReliableSend(transport::CabAddress src,
                        transport::CabAddress dst,
                        std::uint16_t dstMailbox, std::uint32_t msgId,
                        std::size_t bytes) override;
    void onReliableOutcome(transport::CabAddress src,
                           transport::CabAddress dst,
                           std::uint16_t dstMailbox,
                           std::uint32_t msgId, bool ok) override;
    void onDatagramSend(transport::CabAddress src,
                        transport::CabAddress dst,
                        std::uint16_t dstMailbox,
                        std::uint32_t msgId) override;
    void onDeliver(transport::CabAddress src,
                   transport::CabAddress dst, std::uint16_t dstMailbox,
                   std::uint32_t msgId, bool reliable,
                   std::size_t bytes) override;
    void onCrash(transport::CabAddress addr) override;
    void onRestart(transport::CabAddress addr) override;

    // ----- collective::CollectiveProbe ------------------------------
    void onCollectiveStart(collective::GroupId gid, int rank) override;
    void onCollectiveEnd(collective::GroupId gid, int rank, bool ok,
                         std::uint8_t error, std::uint32_t startEpoch,
                         std::uint32_t endEpoch) override;
    void onEpochBump(collective::GroupId gid,
                     std::uint32_t newEpoch) override;

    // ----- verdict --------------------------------------------------

    /**
     * End-of-run checks (call after the drain deadline): reliable
     * sends without an outcome and collectives without an end are
     * wedge violations.
     */
    void finish();

    bool failed() const { return !_violations.empty(); }

    /** Deterministic violation list (capped; see droppedViolations). */
    const std::vector<std::string> &violations() const
    {
        return _violations;
    }

    /** Violations beyond the storage cap. */
    std::uint64_t droppedViolations() const { return _dropped; }

    /** One-line accounting summary. */
    std::string summary() const;

    // Accounting (test/driver observability).
    std::uint64_t reliableSends() const { return _reliableSends; }
    std::uint64_t reliableDeliveries() const { return _reliableDelivered; }
    std::uint64_t datagramSends() const { return _datagramSends; }
    std::uint64_t datagramDeliveries() const { return _datagramDelivered; }
    std::uint64_t collectiveOps() const { return _collectiveStarts; }
    std::uint64_t collectiveFailures() const { return _collectiveFails; }
    std::uint64_t groupEpochBumps() const { return _epochBumps; }

  private:
    void violate(const std::string &what);

    /** (src, dst, msgId) packed: 16 + 16 + 32 bits. */
    static std::uint64_t key(transport::CabAddress src,
                             transport::CabAddress dst,
                             std::uint32_t msgId)
    {
        return (static_cast<std::uint64_t>(src) << 48) |
               (static_cast<std::uint64_t>(dst) << 32) | msgId;
    }

    enum class Outcome : std::uint8_t { pending, ok, failedSend };

    struct SendRec
    {
        std::uint16_t dstMailbox = 0;
        bool reliable = false;
        Outcome outcome = Outcome::pending; // datagrams: never pending
        std::uint32_t deliveries = 0;       // total
        std::uint32_t epochDeliveries = 0;  // in deliverEpoch
        std::uint32_t deliverEpoch = 0;     // receiver boot epoch
    };

    std::map<std::uint64_t, SendRec> sends;
    std::map<transport::CabAddress, std::uint32_t> bootEpoch;

    /** Open operation count per (gid << 32 | rank). */
    std::map<std::uint64_t, std::int64_t> openOps;
    std::map<collective::GroupId, std::uint32_t> lastEpoch;

    std::vector<std::string> _violations;
    std::uint64_t _dropped = 0;
    static constexpr std::size_t maxViolations = 32;

    std::uint64_t _reliableSends = 0, _reliableDelivered = 0;
    std::uint64_t _datagramSends = 0, _datagramDelivered = 0;
    std::uint64_t _collectiveStarts = 0, _collectiveEnds = 0;
    std::uint64_t _collectiveFails = 0;
    std::uint64_t _epochBumps = 0;
    bool finished = false;

    /**
     * Serializes the ledger under the parallel engine, where probes
     * fire from every cluster's worker.  The *verdict* (pass/fail and
     * the violation set) stays deterministic — each check keys on
     * simulation state, not arrival order — but the violation list's
     * order is only reproducible on single-queue runs.
     */
    mutable std::mutex _mutex;
};

} // namespace nectar::fault
