#include "fault/planio.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace nectar::fault {

namespace {

const char *
dirToken(Direction d)
{
    switch (d) {
      case Direction::toHub: return "toHub";
      case Direction::fromHub: return "fromHub";
      case Direction::both: return "both";
    }
    return "both";
}

bool
parseDir(const std::string &s, Direction &out)
{
    if (s == "toHub")
        out = Direction::toHub;
    else if (s == "fromHub")
        out = Direction::fromHub;
    else if (s == "both")
        out = Direction::both;
    else
        return false;
    return true;
}

bool
parseAction(const std::string &s, Action &out)
{
    static const Action all[] = {
        Action::hubLinkDown,  Action::hubLinkUp,
        Action::cabLinkDown,  Action::cabLinkUp,
        Action::burstStart,   Action::burstEnd,
        Action::hubPortStuck, Action::hubPortRestore,
        Action::cabCrash,     Action::cabRestart,
    };
    for (Action a : all) {
        if (s == actionName(a)) {
            out = a;
            return true;
        }
    }
    return false;
}

/** %.17g: enough digits to round-trip any IEEE-754 double. */
std::string
fmtDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

[[noreturn]] void
badLine(int lineno, const std::string &line, const std::string &why)
{
    sim::fatal("parsePlan: line " + std::to_string(lineno) + ": " +
               why + ": '" + line + "'");
}

} // namespace

std::string
serializePlan(const FaultPlan &plan)
{
    std::ostringstream os;
    os << "nectar-fault-plan v1\n";
    os << "name " << plan.name << "\n";
    os << "seed " << plan.seed << "\n";
    for (const FaultEvent &e : plan.events) {
        os << "event at=" << e.at << " action=" << actionName(e.action)
           << " hub=" << e.hub << " port=" << static_cast<int>(e.port)
           << " site=" << e.site << " dir=" << dirToken(e.dir)
           << " burst=" << fmtDouble(e.burst.pGoodBad) << ","
           << fmtDouble(e.burst.pBadGood) << ","
           << fmtDouble(e.burst.lossGood) << ","
           << fmtDouble(e.burst.lossBad) << "\n";
    }
    os << "end\n";
    return os.str();
}

FaultPlan
parsePlan(const std::string &text)
{
    std::istringstream is(text);
    std::string line;
    int lineno = 0;
    auto next = [&]() -> bool {
        while (std::getline(is, line)) {
            ++lineno;
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (!line.empty())
                return true;
        }
        return false;
    };

    if (!next() || line != "nectar-fault-plan v1")
        badLine(lineno, line, "missing or wrong header");

    FaultPlan plan;
    bool sawEnd = false;
    while (next()) {
        if (line == "end") {
            sawEnd = true;
            break;
        }
        std::istringstream ls(line);
        std::string kw;
        ls >> kw;
        if (kw == "name") {
            std::string rest;
            std::getline(ls, rest);
            if (!rest.empty() && rest.front() == ' ')
                rest.erase(0, 1);
            plan.name = rest;
        } else if (kw == "seed") {
            if (!(ls >> plan.seed))
                badLine(lineno, line, "bad seed");
        } else if (kw == "event") {
            FaultEvent e;
            bool sawAt = false, sawAction = false;
            std::string field;
            while (ls >> field) {
                auto eq = field.find('=');
                if (eq == std::string::npos)
                    badLine(lineno, line, "field without '='");
                std::string key = field.substr(0, eq);
                std::string val = field.substr(eq + 1);
                char *endp = nullptr;
                if (key == "at") {
                    e.at = std::strtoll(val.c_str(), &endp, 10);
                    if (endp == val.c_str() || *endp)
                        badLine(lineno, line, "bad at");
                    sawAt = true;
                } else if (key == "action") {
                    if (!parseAction(val, e.action))
                        badLine(lineno, line, "unknown action");
                    sawAction = true;
                } else if (key == "hub") {
                    e.hub = std::atoi(val.c_str());
                } else if (key == "port") {
                    e.port =
                        static_cast<hub::PortId>(std::atoi(val.c_str()));
                } else if (key == "site") {
                    e.site = std::atoi(val.c_str());
                } else if (key == "dir") {
                    if (!parseDir(val, e.dir))
                        badLine(lineno, line, "unknown dir");
                } else if (key == "burst") {
                    double p[4];
                    const char *s = val.c_str();
                    for (int i = 0; i < 4; ++i) {
                        p[i] = std::strtod(s, &endp);
                        if (endp == s)
                            badLine(lineno, line, "bad burst");
                        s = endp;
                        if (i < 3) {
                            if (*s != ',')
                                badLine(lineno, line, "bad burst");
                            ++s;
                        }
                    }
                    if (*s)
                        badLine(lineno, line, "bad burst");
                    e.burst.pGoodBad = p[0];
                    e.burst.pBadGood = p[1];
                    e.burst.lossGood = p[2];
                    e.burst.lossBad = p[3];
                } else {
                    badLine(lineno, line, "unknown field '" + key + "'");
                }
            }
            if (!sawAt || !sawAction)
                badLine(lineno, line, "event needs at= and action=");
            plan.events.push_back(e);
        } else {
            badLine(lineno, line, "unknown keyword '" + kw + "'");
        }
    }
    if (!sawEnd)
        sim::fatal("parsePlan: missing 'end' terminator");
    return plan;
}

void
savePlan(const FaultPlan &plan, const std::string &path)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        sim::fatal("savePlan: cannot open '" + path + "'");
    out << serializePlan(plan);
    out.flush();
    if (!out)
        sim::fatal("savePlan: write failed for '" + path + "'");
}

FaultPlan
loadPlan(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        sim::fatal("loadPlan: cannot open '" + path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    return parsePlan(buf.str());
}

} // namespace nectar::fault
