/**
 * @file
 * The chaos-fuzz harness: one generated plan against a standard
 * system and workload, judged by the DeliveryOracle.
 *
 * runCase() builds a mesh-of-HUBs system, attaches the oracle to
 * every transport and to the group directory, drives a mixed
 * workload — per-site reliable streams, datagrams, and a group of
 * Nectarine tasks running collective rounds — executes the fault
 * plan, runs the simulation to quiescence, and returns the oracle's
 * verdict plus the campaign report.  Everything derives from the
 * plan (and its seed), so the same plan always returns the same
 * verdict: the determinism that makes delta-debugging shrinking
 * sound.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/generate.hh"
#include "fault/plan.hh"
#include "fault/report.hh"
#include "topo/description.hh"

namespace nectar::fault {

/** Which fabric runCase builds (all via TopologyDescription). */
enum class FuzzFabric
{
    mesh,    ///< rows x cols 2-D mesh (the historical default).
    torus,   ///< rows x cols 2-D torus.
    fattree, ///< rows spines x cols leaves.
    file,    ///< Load FuzzConfig::topoFile.
};

/** Harness tuning (the fuzz "standard candle"). */
struct FuzzConfig
{
    /** Fabric kind; mesh with the defaults below reproduces the
     *  historical 2x2x2 harness bit-for-bit. */
    FuzzFabric fabric = FuzzFabric::mesh;

    /** .topo path for FuzzFabric::file. */
    std::string topoFile;

    // System shape: rows x cols HUB mesh (or spines x leaves for
    // fattree), cabsPerHub CABs each.  Ignored for file fabrics.
    int rows = 2;
    int cols = 2;
    int cabsPerHub = 2;

    // Workload.
    int reliablePerSite = 4;  ///< Reliable messages per site.
    int datagramsPerSite = 2; ///< Best-effort datagrams per site.
    std::size_t minBytes = 64;
    std::size_t maxBytes = 4096;
    int collectiveMembers = 4; ///< Group size (tasks on sites 0..k-1).
    int collectiveRounds = 2;  ///< allreduce+barrier rounds.

    /**
     * Serving-load scenario: when positive, each site also drives
     * this many open-loop RPC arrivals (src/serving) at the fault
     * plan, seeded from the plan's seed.  RPC traffic is
     * at-least-once and not ledgered by the oracle; what this buys
     * is the oracle's no-phantom / no-silent-loss verdict on the
     * reliable and datagram traffic — and the drain check — while
     * request/response load is in flight on the same fabric.
     */
    int servingArrivalsPerSite = 0;

    /** Logical client flows for the serving scenario. */
    std::uint64_t servingFlows = 1'000'000;

    /** Fail the case if the system is not quiescent by this tick
     *  (the grace period after the last fault heals). */
    sim::Tick drainDeadline = 400 * sim::ticks::ms;

    /**
     * Deliberate bug injection for shrinker/acceptance demos: report
     * every reliable delivery landing inside one of the plan's burst
     * windows twice, manufacturing a duplicate-delivery violation
     * whose minimal repro is a single burst window plus traffic.
     * Incompatible with threads > 1 (the wrapper reads one global
     * clock).
     */
    bool injectDeliveryBug = false;

    /**
     * Worker threads for the simulation core.  <= 1 builds the
     * classic single-queue harness; > 1 builds the system on a
     * sim::ParallelEngine (one cluster per HUB) and drives the fault
     * plan in stepped mode: runUntil() to just before each fault
     * time, then the fault mutates topology state in the
     * single-threaded gap.  The oracle's verdict is unchanged —
     * fuzzing under threads additionally exercises the parallel
     * core's mailboxes, barriers, and shared-service locking (run it
     * under the tsan preset for the full race gate).
     */
    int threads = 1;
};

/** Verdict of one fuzz case. */
struct FuzzResult
{
    bool passed = false;
    std::vector<std::string> violations;
    std::string oracleSummary;
    CampaignReport report;
    sim::Tick quiescedAt = 0; ///< eq.now() after the run drained.

    // Oracle accounting (coverage assertions in tests).
    std::uint64_t reliableSends = 0;
    std::uint64_t reliableDeliveries = 0;
    std::uint64_t collectiveOps = 0;
    std::uint64_t collectiveFailures = 0;
    std::uint64_t groupEpochBumps = 0;

    // Serving-scenario accounting (FuzzConfig::servingArrivalsPerSite).
    std::uint64_t servingIssued = 0;
    std::uint64_t servingCompleted = 0;
    std::uint64_t servingFailed = 0;
};

/** Run one plan through the standard harness. */
FuzzResult runCase(const FaultPlan &plan, const FuzzConfig &cfg = {});

/** The fabric description runCase will build for @p cfg. */
topo::TopologyDescription
harnessDescription(const FuzzConfig &cfg = {});

/** The SystemShape runCase's system will have (for PlanGenerator). */
SystemShape harnessShape(const FuzzConfig &cfg = {});

} // namespace nectar::fault
