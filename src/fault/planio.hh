/**
 * @file
 * FaultPlan text (de)serialization: campaigns as repro files.
 *
 * Every generated or shrunk plan can be written to a small
 * line-oriented text file and read back bit-exactly, so a failing
 * chaos campaign is a saveable, replayable artifact.  The format is
 * versioned and deliberately diff-friendly:
 *
 *     nectar-fault-plan v1
 *     name <rest of line>
 *     seed <u64>
 *     event at=<tick> action=<name> hub=<int> port=<int> site=<int>
 *           dir=<toHub|fromHub|both> burst=<pGB>,<pBG>,<lG>,<lB>
 *     end
 *
 * (each `event` on one line; doubles print with %.17g so they
 * round-trip exactly).  Malformed input is a sim::FatalError naming
 * the offending line.
 */

#pragma once

#include <string>

#include "fault/plan.hh"

namespace nectar::fault {

/** Render @p plan as the v1 text format (round-trip stable). */
std::string serializePlan(const FaultPlan &plan);

/** Parse the v1 text format.  Fatal on malformed input. */
FaultPlan parsePlan(const std::string &text);

/** serializePlan to @p path.  Fatal on I/O failure. */
void savePlan(const FaultPlan &plan, const std::string &path);

/** parsePlan from @p path.  Fatal on I/O or parse failure. */
FaultPlan loadPlan(const std::string &path);

} // namespace nectar::fault
