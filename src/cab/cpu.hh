/**
 * @file
 * The CAB's CPU as a serialized timing resource.
 *
 * "The choice of a high-speed CPU, rather than a custom microengine
 * or lower performance CPU, distinguishes the CAB from many I/O
 * controllers" (Section 5.1).  Protocol code in the simulator runs as
 * C++ but charges time here; the resource serializes, so concurrent
 * protocol work queues up as it would on the single SPARC.
 */

#pragma once

#include <functional>

#include "sim/component.hh"
#include "sim/coro.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace nectar::cab {

/**
 * A busy-until CPU model.  Work is charged in FIFO order: a request
 * issued at time t with cost c completes at max(t, busyUntil) + c.
 */
class CpuResource : public sim::Component
{
  public:
    CpuResource(sim::EventQueue &eq, std::string name)
        : sim::Component(eq, std::move(name))
    {}

    /**
     * Reserve @p cost of CPU time starting no earlier than now.
     * @return The completion tick.
     */
    sim::Tick
    charge(sim::Tick cost)
    {
        sim::Tick start = std::max(now(), _busyUntil);
        _busyUntil = start + cost;
        _busyTicks += cost;
        return _busyUntil;
    }

    /**
     * Awaitable: suspend the calling coroutine until the charged work
     * completes.
     *
     * @code
     * co_await cpu.compute(costs.transportSendPerPacket);
     * @endcode
     */
    auto
    compute(sim::Tick cost)
    {
        sim::Tick done = charge(cost);
        return sim::Delay{eventq(), done - now()};
    }

    /**
     * Run @p fn when the charged work completes (callback form, for
     * interrupt handlers).
     */
    void
    chargeThen(sim::Tick cost, sim::EventFn fn)
    {
        sim::Tick done = charge(cost);
        eventq().schedule(done, std::move(fn),
                          sim::EventPriority::software);
    }

    /** Tick at which the CPU becomes idle. */
    sim::Tick busyUntil() const { return _busyUntil; }

    /** Total busy time, for utilization measurements. */
    sim::Tick busyTicks() const { return _busyTicks; }

  private:
    sim::Tick _busyUntil = 0;
    sim::Tick _busyTicks = 0;
};

} // namespace nectar::cab
