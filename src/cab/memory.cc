#include "memory.hh"

#include <cstring>

#include "sim/logging.hh"

namespace nectar::cab {

CabMemory::CabMemory()
    : prom(addrmap::promSize, 0),
      programRam(addrmap::programRamSize, 0),
      dataRam(addrmap::dataRamSize, 0), prot(addrmap::spaceSize)
{
}

bool
CabMemory::mapped(std::uint32_t addr, std::uint32_t len) const
{
    if (len == 0)
        return addr < addrmap::spaceSize;
    if (addr + len < addr)
        return false;
    auto inside = [&](std::uint32_t base, std::uint32_t size) {
        return addr >= base && addr + len <= base + size;
    };
    return inside(addrmap::promBase, addrmap::promSize) ||
           inside(addrmap::programRamBase, addrmap::programRamSize) ||
           inside(addrmap::dataRamBase, addrmap::dataRamSize);
}

std::uint8_t *
CabMemory::backing(std::uint32_t addr, std::uint32_t len)
{
    auto inside = [&](std::uint32_t base, std::uint32_t size) {
        return addr >= base && addr + len <= base + size;
    };
    if (inside(addrmap::promBase, addrmap::promSize))
        return prom.data() + (addr - addrmap::promBase);
    if (inside(addrmap::programRamBase, addrmap::programRamSize))
        return programRam.data() + (addr - addrmap::programRamBase);
    if (inside(addrmap::dataRamBase, addrmap::dataRamSize))
        return dataRam.data() + (addr - addrmap::dataRamBase);
    return nullptr;
}

bool
CabMemory::read(Domain domain, std::uint32_t addr, std::uint8_t *out,
                std::uint32_t len, Accessor by)
{
    if (!mapped(addr, len)) {
        _busErrors.add();
        return false;
    }
    if (!prot.check(domain, addr, len, permRead))
        return false;
    // nectar-lint: copy-ok memory-array hardware model; bytes
    // charged per accessor via byteCounts, not packet payload
    std::memcpy(out, backing(addr, len), len);
    byteCounts[static_cast<int>(by)].add(len);
    return true;
}

bool
CabMemory::write(Domain domain, std::uint32_t addr,
                 const std::uint8_t *src, std::uint32_t len,
                 Accessor by)
{
    if (!mapped(addr, len)) {
        _busErrors.add();
        return false;
    }
    // PROM is immutable after factory programming, regardless of the
    // protection tables.
    if (addr < addrmap::promBase + addrmap::promSize) {
        _busErrors.add();
        return false;
    }
    if (!prot.check(domain, addr, len, permWrite))
        return false;
    // nectar-lint: copy-ok memory-array hardware model; bytes
    // charged per accessor via byteCounts, not packet payload
    std::memcpy(backing(addr, len), src, len);
    byteCounts[static_cast<int>(by)].add(len);
    return true;
}

void
CabMemory::loadProm(std::uint32_t offset,
                    const std::vector<std::uint8_t> &image)
{
    if (offset + image.size() > addrmap::promSize)
        sim::fatal("CabMemory::loadProm: image does not fit");
    // nectar-lint: copy-ok factory PROM programming at build
    // time, not packet payload
    std::memcpy(prom.data() + offset, image.data(), image.size());
}

std::uint64_t
CabMemory::totalBytes() const
{
    std::uint64_t n = 0;
    for (const auto &c : byteCounts)
        n += c.value();
    return n;
}

} // namespace nectar::cab
