#include "checksum.hh"

namespace nectar::cab {

std::uint16_t
checksum16(const std::uint8_t *data, std::size_t len)
{
    ChecksumAccumulator acc;
    acc.feed(data, len);
    return acc.finish();
}

} // namespace nectar::cab
