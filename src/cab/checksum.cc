#include "checksum.hh"

namespace nectar::cab {

std::uint16_t
checksum16(const std::uint8_t *data, std::size_t len)
{
    std::uint32_t sum = 0;
    std::size_t i = 0;
    for (; i + 1 < len; i += 2)
        sum += (static_cast<std::uint32_t>(data[i]) << 8) | data[i + 1];
    if (i < len)
        sum += static_cast<std::uint32_t>(data[i]) << 8;
    while (sum >> 16)
        sum = (sum & 0xFFFF) + (sum >> 16);
    std::uint16_t result = static_cast<std::uint16_t>(~sum);
    return result == 0 ? 0xFFFF : result;
}

} // namespace nectar::cab
