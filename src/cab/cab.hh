/**
 * @file
 * The CAB: Nectar's communication accelerator board.
 *
 * Section 5: "The CAB is the interface between a node and the
 * Nectar-net. ... Communication protocol processing is off-loaded
 * from the node to the CAB thus freeing the node from the burden of
 * handling packet interrupts, processing packet headers,
 * retransmitting lost packets, fragmenting large messages, and
 * calculating checksums."
 *
 * This class models the board's hardware (Figure 8): the fiber I/O
 * port with its input queue, the DMA controller, on-board memory with
 * protection, hardware checksum and timers, and the SPARC CPU as a
 * timing resource.  The CAB *software* — kernel, datalink, transport
 * — lives in src/cabos, src/datalink and src/transport and drives
 * this hardware through the interface below.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "cab/cost_model.hh"
#include "cab/cpu.hh"
#include "cab/memory.hh"
#include "cab/timers.hh"
#include "phys/fiber.hh"
#include "sim/component.hh"
#include "sim/stats.hh"

namespace nectar::cab {

/** CAB configuration. */
struct CabConfig
{
    /** Fiber input queue, same circuit as the HUB I/O port (§5.2). */
    std::uint32_t inputQueueBytes = sim::proto::hubInputQueueBytes;
    /** Wire chunk size used when streaming packet data. */
    std::uint32_t chunkBytes = 256;
    /** Software operation costs. */
    CabCostModel costs;
};

/** Counters exposed by the board. */
struct CabStats
{
    sim::Counter txPackets;   ///< Packets DMA'd onto the fiber.
    sim::Counter txBytes;     ///< Data bytes transmitted.
    sim::Counter rxPackets;   ///< Packets fully received.
    sim::Counter rxBytes;     ///< Data bytes received.
    sim::Counter rxDropped;   ///< Packets lost to input-queue overflow.
    sim::Counter strayItems;  ///< Commands/markers outside any packet
                              ///< (e.g. multicast route spillover).
    sim::Counter rxCorrupted; ///< Packets flagged by fault injection.
    sim::Counter framingErrors; ///< Start-of-packet seen mid-packet
                                ///< (lost end-of-packet marker).
};

/**
 * The CAB hardware.  One per node; attaches to a HUB port via a
 * fiber pair.
 */
class Cab : public sim::Component, public phys::FiberSink
{
  public:
    Cab(sim::EventQueue &eq, std::string name,
        const CabConfig &config = {});

    /** Attach the fiber this CAB transmits on (toward its HUB). */
    void attachTx(phys::FiberLink &link) { tx = &link; }

    phys::FiberLink *txLink() { return tx; }

    const CabConfig &config() const { return cfg; }
    const CabCostModel &costs() const { return cfg.costs; }

    CpuResource &cpu() { return _cpu; }
    CabMemory &memory() { return mem; }
    HwTimers &timers() { return _timers; }
    CabStats &stats() { return _stats; }

    /** Tag the board and the hardware it owns (sim/owner.hh). */
    void
    setOwnerCluster(sim::ClusterId c) override
    {
        sim::Component::setOwnerCluster(c);
        _cpu.setOwnerCluster(c);
        _timers.setOwnerCluster(c);
    }

    // ----- Transmit path (DMA controller, Section 5.1) -------------

    /** CPU-issued command word (route setup, status queries). */
    void sendControl(const phys::WireItem &item);

    /** Insert a ready signal (cycle-stealing) toward the HUB. */
    void sendReady();

    /**
     * DMA a frame — an ordered sequence of wire items (commands,
     * framing, data chunks) — onto the outgoing fiber.
     *
     * "The DMA controller is able to manage simultaneous data
     * transfers between the incoming and outgoing fibers and CAB
     * memory" (Section 5.1): transmission proceeds without the CPU;
     * @p onDone fires when the last byte has been serialized.
     */
    void dmaSend(std::vector<phys::WireItem> items,
                 sim::EventFn onDone = {});

    /** Convenience: split @p payload into chunks between SOP/EOP. */
    std::vector<phys::WireItem> framePacket(phys::Payload payload);

    // ----- Receive path ---------------------------------------------

    /**
     * Interrupt delivered when a start-of-packet arrives.  The
     * datalink software must call acceptPacket() before the input
     * queue overflows ("The transport layer upcalls must determine
     * the destination mailbox and return to the datalink layer before
     * incoming data overflows the CAB input queue", Section 6.2.1).
     */
    std::function<void()> onPacketStart;

    /** A reply word arrived (route setup acknowledgments). */
    std::function<void(const phys::ReplyWord &)> onReply;

    /** A ready signal arrived (HUB queue drained; flow control). */
    std::function<void()> onReadySignal;

    /** A packet was fully received and accepted.  The view chains
     *  the received chunks' buffers — contiguous chunks of one
     *  packet coalesce back into a single segment, so no bytes are
     *  copied on the receive path. */
    std::function<void(sim::PacketView &&, bool corrupted)>
        onPacketComplete;

    /** A packet was lost to input-queue overflow. */
    std::function<void()> onPacketDropped;

    /**
     * Software supplies a destination buffer: start the receive DMA,
     * draining the input queue and signalling readiness upstream.
     *
     * The accept belongs to the packet whose start raised the
     * interrupt, identified by @p generation (rxGeneration() at
     * onPacketStart time).  If a new start of packet has replaced
     * that packet in the meantime — back-to-back packets racing the
     * upcall latency — the stale accept is ignored; the new packet's
     * own interrupt carries its own accept.
     */
    void acceptPacket(std::uint64_t generation);

    /** Accept whatever packet is currently in the receive window. */
    void acceptPacket() { acceptPacket(rx.generation); }

    /** Identity of the packet currently being received. */
    std::uint64_t rxGeneration() const { return rx.generation; }

    /** Bytes sitting in the fiber input queue right now. */
    std::uint32_t inputQueueBytes() const { return rx.queuedBytes; }

    // FiberSink: the HUB's outgoing fiber delivers here.
    void fiberDeliver(phys::WireItem item, Tick firstByte,
                      Tick lastByte) override;

  private:
    struct RxState
    {
        bool inPacket = false;
        bool accepted = false;
        bool overflowed = false;
        bool corrupted = false;
        bool eopSeen = false;
        std::uint32_t queuedBytes = 0;
        /** Monotonic packet identity; survives RxState resets. */
        std::uint64_t generation = 0;
        sim::PacketView buf;
        std::vector<phys::WireItem> pending;
    };

    void completeRx();

    CabConfig cfg;
    phys::FiberLink *tx = nullptr;
    CpuResource _cpu;
    CabMemory mem;
    HwTimers _timers;
    CabStats _stats;
    RxState rx;
};

} // namespace nectar::cab
