/**
 * @file
 * The CAB's hardware checksum unit.
 *
 * "hardware checksum computation removes this burden from protocol
 * software" (Section 5.1).  The function below is the 16-bit
 * ones-complement (Internet-style) checksum; because the hardware
 * computes it on the fly during DMA, the simulator charges no CPU
 * time for it.
 */

#pragma once

#include <cstdint>
#include <vector>

namespace nectar::cab {

/**
 * 16-bit ones-complement checksum over @p data.
 *
 * @param data Bytes to sum (odd lengths are zero-padded).
 * @return The ones-complement of the ones-complement sum; never 0
 *         for use as a "checksum present" marker (0xFFFF is returned
 *         instead of 0, as in TCP/UDP practice).
 */
std::uint16_t checksum16(const std::uint8_t *data, std::size_t len);

inline std::uint16_t
checksum16(const std::vector<std::uint8_t> &data)
{
    return checksum16(data.data(), data.size());
}

} // namespace nectar::cab
