/**
 * @file
 * The CAB's hardware checksum unit.
 *
 * "hardware checksum computation removes this burden from protocol
 * software" (Section 5.1).  The function below is the 16-bit
 * ones-complement (Internet-style) checksum; because the hardware
 * computes it on the fly during DMA, the simulator charges no CPU
 * time for it.
 *
 * The hardware sees the packet as a stream of bytes during DMA, so
 * the checksum is computed by feeding a ChecksumAccumulator region by
 * region — a PacketView's segments need never be materialized into
 * one contiguous buffer just to be summed.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "sim/buffer.hh"

namespace nectar::cab {

/**
 * Streaming 16-bit ones-complement checksum.
 *
 * Accepts arbitrary byte regions in sequence; region boundaries do
 * not affect the result (a byte pair may straddle two feed() calls),
 * so summing a scatter-gather packet segment by segment is
 * bit-identical to summing the materialized bytes.
 */
class ChecksumAccumulator
{
  public:
    /** Add @p len bytes to the running sum. */
    void
    feed(const std::uint8_t *data, std::size_t len)
    {
        std::size_t i = 0;
        if (havePending && len > 0) {
            sum += (static_cast<std::uint32_t>(pending) << 8) | data[0];
            havePending = false;
            i = 1;
        }
        for (; i + 1 < len; i += 2)
            sum += (static_cast<std::uint32_t>(data[i]) << 8) |
                   data[i + 1];
        if (i < len) {
            pending = data[i];
            havePending = true;
        }
    }

    /**
     * The ones-complement of the ones-complement sum; 0xFFFF is
     * returned instead of 0 (as in TCP/UDP practice).  Odd total
     * lengths are zero-padded.
     */
    std::uint16_t
    finish() const
    {
        std::uint32_t s = sum;
        if (havePending)
            s += static_cast<std::uint32_t>(pending) << 8;
        while (s >> 16)
            s = (s & 0xFFFF) + (s >> 16);
        auto result = static_cast<std::uint16_t>(~s);
        return result == 0 ? 0xFFFF : result;
    }

  private:
    std::uint32_t sum = 0;
    std::uint8_t pending = 0;   ///< High byte of a straddling pair.
    bool havePending = false;
};

/**
 * 16-bit ones-complement checksum over @p data.
 *
 * @param data Bytes to sum (odd lengths are zero-padded).
 * @return The ones-complement of the ones-complement sum; never 0
 *         for use as a "checksum present" marker (0xFFFF is returned
 *         instead of 0, as in TCP/UDP practice).
 */
std::uint16_t checksum16(const std::uint8_t *data, std::size_t len);

inline std::uint16_t
checksum16(const std::vector<std::uint8_t> &data)
{
    return checksum16(data.data(), data.size());
}

/** Checksum a scatter-gather view without materializing it. */
inline std::uint16_t
checksum16(const sim::PacketView &view)
{
    ChecksumAccumulator acc;
    view.forEachSegment([&](const std::uint8_t *p, std::size_t n) {
        acc.feed(p, n);
    });
    return acc.finish();
}

} // namespace nectar::cab
