/**
 * @file
 * The CAB software/hardware cost model.
 *
 * The CAB is a 16 MHz SPARC with fast static RAM (Section 5.2).  The
 * simulator executes protocol logic as real C++ code but charges
 * simulated time for each operation according to this model.  Values
 * are chosen to reproduce the paper's published numbers:
 *
 *  - thread switch: 10-15 us, "almost all of this time is spent
 *    saving and restoring the SPARC register windows" (Section 6.1);
 *  - interrupt dispatch is cheap because "the SPARC architecture
 *    helps reduce the overhead for critical interrupts by reserving a
 *    register window for trap handling" (Section 6.2.1);
 *  - checksums cost nothing on the CPU: "hardware checksum
 *    computation removes this burden from protocol software"
 *    (Section 5.1);
 *  - end-to-end goals: CAB-to-CAB process latency < 30 us,
 *    node-to-node < 100 us (Section 2.3).
 */

#pragma once

#include "sim/types.hh"

namespace nectar::cab {

using sim::Tick;
using namespace sim::ticks;

/** Per-operation simulated costs for CAB software. */
struct CabCostModel
{
    /** Interrupt entry to handler start (reserved register window). */
    Tick interruptDispatch = 1 * us;

    /** Datalink interrupt handler work per packet (excl. upcall). */
    Tick datalinkPerPacket = 1 * us;

    /** Transport-layer upcall: find the destination mailbox. */
    Tick transportUpcall = 1 * us;

    /** Transport send path per packet (header build, bookkeeping). */
    Tick transportSendPerPacket = 2 * us;

    /** Transport receive path per packet after the upcall. */
    Tick transportRecvPerPacket = 2 * us;

    /** Programming one DMA channel. */
    Tick dmaSetup = 500 * ns;

    /**
     * Loading one additional scatter-gather descriptor: a
     * multi-segment PacketView (VME gather out of node memory,
     * Section 5.2) costs dmaSetup for the channel plus this per
     * segment beyond the first.  Single-segment sends are unchanged.
     */
    Tick dmaSegmentSetup = 150 * ns;

    /** Thread context switch (SPARC register windows, Section 6.1). */
    Tick threadSwitch = 12 * us + 500 * ns;

    /** Setting or cancelling a hardware timer (Section 5.1). */
    Tick timerOp = 200 * ns;

    /** Mailbox space allocation / reclaim (FIFO case, Section 6.1). */
    Tick mailboxOp = 500 * ns;

    /** Checksum: computed by hardware during DMA; no CPU cost. */
    Tick checksum = 0;

    /** Per-byte CPU copy cost, when software must touch data. */
    double copyPerByteNs = 50.0; // ~20 MB/s PIO on the 16 MHz SPARC
};

} // namespace nectar::cab
