/**
 * @file
 * CAB hardware timers.
 *
 * "hardware timers allow time-outs to be set by the software with low
 * overhead" (Section 5.1).  Transport retransmission and datalink
 * recovery use these; setting/cancelling charges only
 * CabCostModel::timerOp on the CPU (charged by the caller).
 */

#pragma once

#include <functional>

#include "sim/component.hh"
#include "sim/stats.hh"

namespace nectar::cab {

/** Identifies an armed timer. */
using TimerId = sim::EventId;

/** A bank of one-shot hardware timers. */
class HwTimers : public sim::Component
{
  public:
    HwTimers(sim::EventQueue &eq, std::string name)
        : sim::Component(eq, std::move(name))
    {}

    /**
     * Arm a one-shot timer.
     *
     * @param delay Expiry delay from now.
     * @param fn Callback invoked at expiry (interrupt context).
     * @return Id usable with cancel().
     */
    TimerId
    set(sim::Tick delay, std::function<void()> fn)
    {
        _set.add();
        return eventq().scheduleIn(delay, std::move(fn),
                                   sim::EventPriority::software);
    }

    /** Disarm; returns false if already fired or cancelled. */
    bool
    cancel(TimerId id)
    {
        bool ok = eventq().cancel(id);
        if (ok)
            _cancelled.add();
        return ok;
    }

    /** True if the timer is armed and has not fired. */
    bool armed(TimerId id) const { return eventq().pending(id); }

    std::uint64_t timersSet() const { return _set.value(); }
    std::uint64_t timersCancelled() const { return _cancelled.value(); }

  private:
    sim::Counter _set;
    sim::Counter _cancelled;
};

} // namespace nectar::cab
