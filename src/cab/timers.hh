/**
 * @file
 * CAB hardware timers.
 *
 * "hardware timers allow time-outs to be set by the software with low
 * overhead" (Section 5.1).  Transport retransmission and datalink
 * recovery use these; setting/cancelling charges only
 * CabCostModel::timerOp on the CPU (charged by the caller).
 */

#pragma once

#include "sim/component.hh"
#include "sim/stats.hh"

namespace nectar::cab {

/** Identifies an armed timer. */
using TimerId = sim::EventId;

/** A bank of one-shot hardware timers. */
class HwTimers : public sim::Component
{
  public:
    HwTimers(sim::EventQueue &eq, std::string name)
        : sim::Component(eq, std::move(name))
    {}

    /**
     * Arm a one-shot timer.
     *
     * @param delay Expiry delay from now.
     * @param fn Callback invoked at expiry (interrupt context).
     * @return Id usable with cancel().
     */
    TimerId
    set(sim::Tick delay, sim::EventFn fn)
    {
        _set.add();
        return eventq().scheduleIn(delay, std::move(fn),
                                   sim::EventPriority::software);
    }

    /**
     * Push an armed timer's expiry out to @p delay from now, keeping
     * its callback — the Jacobson/Karn RTO pattern, where the timer is
     * re-armed on every ack and only rarely expires.  When @p id is no
     * longer armed (it just fired, or was never set), falls back to
     * arming a fresh timer with @p fallback.
     *
     * Counts as a set (and, when re-arming, a cancel): externally the
     * operation is indistinguishable from the cancel+set it replaces,
     * but the engine takes a lazy no-refile fast path for the common
     * re-arm-to-later case.
     *
     * @return The timer's new id (the old one is dead).
     */
    TimerId
    rearm(TimerId id, sim::Tick delay, sim::EventFn fallback)
    {
        TimerId fresh = eventq().rearmIn(id, delay);
        if (fresh != sim::invalidEventId) {
            _cancelled.add();
            _set.add();
            return fresh;
        }
        return set(delay, std::move(fallback));
    }

    /** Disarm; returns false if already fired or cancelled. */
    bool
    cancel(TimerId id)
    {
        bool ok = eventq().cancel(id);
        if (ok)
            _cancelled.add();
        return ok;
    }

    /** True if the timer is armed and has not fired. */
    bool armed(TimerId id) const { return eventq().pending(id); }

    std::uint64_t timersSet() const { return _set.value(); }
    std::uint64_t timersCancelled() const { return _cancelled.value(); }

  private:
    sim::Counter _set;
    sim::Counter _cancelled;
};

} // namespace nectar::cab
