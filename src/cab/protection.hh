/**
 * @file
 * CAB memory protection: per-page permissions, multiple domains.
 *
 * Section 5.2: "The CAB's memory protection facility allows each
 * 1 kilobyte page to be protected separately.  Each page of the CAB
 * address space (including the CAB registers and devices) can be
 * assigned any subset of read, write, and execute permissions. ...
 * The memory protection includes hardware support for multiple
 * protection domains, with a separate page protection table for each
 * domain.  Currently the CAB supports 32 protection domains. ...
 * accesses from over the VME bus are assigned to a VME-specific
 * protection domain."
 *
 * Checks run "in parallel with the operation so that no latency is
 * added to memory accesses" — accordingly check() charges no time.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace nectar::cab {

/** Access permission bits. */
enum Perm : std::uint8_t {
    permNone = 0,
    permRead = 1,
    permWrite = 2,
    permExec = 4,
    permRW = permRead | permWrite,
    permAll = permRead | permWrite | permExec,
};

/** Protection domain index. */
using Domain = int;

/** The kernel's domain: full access everywhere by convention. */
constexpr Domain kernelDomain = 0;

/** The domain assigned to accesses arriving over the VME bus. */
constexpr Domain vmeDomain = 31;

/**
 * Per-domain, per-page permission tables over a flat address space.
 */
class MemoryProtection
{
  public:
    /**
     * @param addressSpaceBytes Size of the protected address space.
     * @param pageBytes Page granularity (1 KB on the CAB).
     * @param domains Number of protection domains (32 on the CAB).
     */
    MemoryProtection(std::uint32_t addressSpaceBytes,
                     std::uint32_t pageBytes = sim::proto::cabPageBytes,
                     int domains = sim::proto::cabProtectionDomains);

    int numDomains() const { return domains; }
    std::uint32_t pageSize() const { return pageBytes; }
    std::uint32_t numPages() const { return pages; }

    /**
     * Grant @p perms on every page overlapping [addr, addr+len) to
     * @p domain (replacing the previous permissions of those pages).
     */
    void setPerms(Domain domain, std::uint32_t addr, std::uint32_t len,
                  std::uint8_t perms);

    /** Permissions of the page containing @p addr in @p domain. */
    std::uint8_t pagePerms(Domain domain, std::uint32_t addr) const;

    /**
     * Check an access; counts a violation on failure.
     *
     * @param domain Accessing domain.
     * @param addr Start address.
     * @param len Access length in bytes.
     * @param need Required permission bits.
     * @return true if every touched page grants @p need.
     */
    bool check(Domain domain, std::uint32_t addr, std::uint32_t len,
               std::uint8_t need);

    /** Total failed checks. */
    std::uint64_t violations() const { return _violations.value(); }

    /** Revoke all permissions of @p domain (domain teardown). */
    void clearDomain(Domain domain);

  private:
    bool validDomain(Domain d) const { return d >= 0 && d < domains; }

    std::uint32_t pageBytes;
    std::uint32_t pages;
    int domains;
    /** tables[domain][page] = permission bits. */
    std::vector<std::vector<std::uint8_t>> tables;
    sim::Counter _violations;
};

} // namespace nectar::cab
