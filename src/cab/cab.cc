#include "cab.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/stats.hh"

namespace nectar::cab {

using phys::ItemKind;
using phys::WireItem;

Cab::Cab(sim::EventQueue &eq, std::string name, const CabConfig &config)
    : sim::Component(eq, std::move(name)), cfg(config),
      _cpu(eq, this->name() + ".cpu"),
      _timers(eq, this->name() + ".timers")
{
    if (cfg.chunkBytes == 0)
        sim::fatal("Cab: chunkBytes must be positive");
}

void
Cab::sendControl(const WireItem &item)
{
    if (!tx)
        sim::panic(name() + ": sendControl with no fiber attached");
    tx->send(item);
}

void
Cab::sendReady()
{
    if (!tx)
        sim::panic(name() + ": sendReady with no fiber attached");
    tx->sendStolen(WireItem::ready());
}

std::vector<WireItem>
Cab::framePacket(phys::Payload payload)
{
    std::vector<WireItem> items;
    auto size = static_cast<std::uint32_t>(payload.size());
    items.reserve(2 + size / cfg.chunkBytes + 1);
    items.push_back(WireItem::startPacket());
    for (std::uint32_t off = 0; off < size; off += cfg.chunkBytes) {
        std::uint32_t len = std::min(cfg.chunkBytes, size - off);
        items.push_back(WireItem::dataChunk(payload, off, len));
    }
    items.push_back(WireItem::endPacket());
    return items;
}

void
Cab::dmaSend(std::vector<WireItem> items, sim::EventFn onDone)
{
    if (!tx)
        sim::panic(name() + ": dmaSend with no fiber attached");

    std::uint64_t data_bytes = 0;
    bool has_sop = false;
    for (const auto &item : items) {
        if (item.kind == ItemKind::data)
            data_bytes += item.dataLen;
        if (item.kind == ItemKind::startOfPacket)
            has_sop = true;
        tx->send(item);
    }
    // DMA gathers the packet out of data memory (Section 6.2.1).
    if (data_bytes > 0) {
        mem.account(Accessor::fiberOutDma, data_bytes);
        _stats.txBytes.add(data_bytes);
    }
    if (has_sop)
        _stats.txPackets.add();

    // The DMA controller raises completion when the last byte leaves
    // the board: the link knows when that is.  A dark fiber consumes
    // no wire time (send() drops without advancing the busy horizon),
    // so completion may be due immediately rather than in the past.
    Tick done = std::max(now(), tx->busyUntil());
    if (onDone) {
        if (done == now()) {
            // Immediate completion (dark fiber, or the wire already
            // drained): the datalink's continuation runs before any
            // same-tick arrival, not interleaved after it.
            eventq().scheduleAtFront(std::move(onDone));
        } else {
            eventq().schedule(done, std::move(onDone),
                              sim::EventPriority::hardware);
        }
    }
}

void
Cab::fiberDeliver(WireItem item, Tick firstByte, Tick lastByte)
{
    (void)firstByte;
    (void)lastByte;

    switch (item.kind) {
      case ItemKind::reply:
        if (onReply)
            onReply(item.reply);
        return;

      case ItemKind::readySignal:
        if (onReadySignal)
            onReadySignal();
        return;

      case ItemKind::startOfPacket: {
        if (rx.inPacket) {
            // The previous packet's end marker never arrived: a
            // framing error.  Discard the partial packet; transport
            // recovers by retransmission (Section 6.2.1).
            _stats.framingErrors.add();
        }
        std::uint64_t gen = rx.generation;
        rx = RxState{};
        rx.generation = gen + 1;
        rx.inPacket = true;
        rx.queuedBytes = 1;
        if (onPacketStart)
            onPacketStart();
        return;
      }

      case ItemKind::data: {
        if (!rx.inPacket) {
            _stats.strayItems.add();
            return;
        }
        rx.corrupted |= item.corrupted;
        if (rx.accepted) {
            // Receive DMA drains the queue as fast as it fills; the
            // chunk's slice is chained, not copied.
            rx.buf.append(item.data);
            mem.account(Accessor::fiberInDma, item.dataLen);
            return;
        }
        if (rx.queuedBytes + item.dataLen > cfg.inputQueueBytes) {
            // Software was too slow: the input queue overflowed and
            // the rest of the packet is lost (Section 6.2.1).
            rx.overflowed = true;
            return;
        }
        rx.queuedBytes += item.dataLen;
        rx.pending.push_back(std::move(item));
        return;
      }

      case ItemKind::endOfPacket:
        if (!rx.inPacket) {
            _stats.strayItems.add();
            return;
        }
        rx.eopSeen = true;
        if (rx.overflowed) {
            _stats.rxDropped.add();
            std::uint64_t gen = rx.generation;
            rx = RxState{};
            rx.generation = gen;
            if (onPacketDropped)
                onPacketDropped();
            return;
        }
        if (rx.accepted)
            completeRx();
        return;

      case ItemKind::command:
        // Commands reaching a CAB are route spillover (e.g. the
        // multicast example of Section 4.2.2, where opens for a
        // downstream HUB also travel to the terminal CAB of another
        // branch); the CAB discards them.
        _stats.strayItems.add();
        return;
    }
}

void
Cab::acceptPacket(std::uint64_t generation)
{
    if (generation != rx.generation)
        return; // stale accept: a new start of packet took over
    if (!rx.inPacket)
        return; // the packet already overflowed away or never started
    if (rx.accepted)
        sim::panic(name() + ": acceptPacket called twice");
    rx.accepted = true;

    // Drain everything queued so far into the software view.
    for (const auto &item : rx.pending) {
        rx.buf.append(item.data);
        mem.account(Accessor::fiberInDma, item.dataLen);
    }
    rx.pending.clear();
    rx.queuedBytes = 0;

    // The start of packet has (conceptually) emerged from the input
    // queue: signal readiness upstream (Section 4.2.3).
    if (tx)
        sendReady();

    if (rx.eopSeen)
        completeRx();
}

void
Cab::completeRx()
{
    _stats.rxPackets.add();
    _stats.rxBytes.add(rx.buf.size());
    if (rx.corrupted)
        _stats.rxCorrupted.add();
    auto view = std::move(rx.buf);
    bool corrupted = rx.corrupted;
    view.markCorrupted(corrupted);
    std::uint64_t gen = rx.generation;
    rx = RxState{};
    rx.generation = gen;
    if (onPacketComplete)
        onPacketComplete(std::move(view), corrupted);
}

} // namespace nectar::cab
