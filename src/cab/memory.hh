/**
 * @file
 * CAB on-board memory: program and data regions, protection checks,
 * bandwidth accounting.
 *
 * Section 5.2: "The on-board CAB memory is split into two regions:
 * one intended for use as program memory, the other as data memory.
 * ... The program memory region contains 128 kilobytes of PROM and
 * 512 kilobytes of RAM.  The data memory region contains 1 megabyte
 * of RAM.  Both memories are implemented using fast (35 nanosecond)
 * static RAM. ... the total bandwidth of the data memory is 66
 * megabytes/second, sufficient to support the following concurrent
 * accesses: CPU reads or writes, DMA to the outgoing fiber, DMA from
 * the incoming fiber, and DMA to or from VME memory."
 *
 * Every access is checked against the protection tables; transfers
 * are accounted so benches can verify the 66 MB/s sufficiency claim.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "cab/protection.hh"
#include "sim/stats.hh"

namespace nectar::cab {

/** CAB address-space layout. */
namespace addrmap {

constexpr std::uint32_t promBase = 0x000000;
constexpr std::uint32_t promSize = 128 * 1024;
constexpr std::uint32_t programRamBase = 0x020000;
constexpr std::uint32_t programRamSize = 512 * 1024;
constexpr std::uint32_t dataRamBase = 0x100000;
constexpr std::uint32_t dataRamSize = 1024 * 1024;
/** Size of the 24-bit-addressable region the CAB occupies on VME. */
constexpr std::uint32_t spaceSize = 0x200000;

} // namespace addrmap

/** Who initiated a memory access (for the bandwidth accounting). */
enum class Accessor { cpu, fiberOutDma, fiberInDma, vmeDma };

/**
 * The CAB's on-board memory with protection and accounting.
 */
class CabMemory
{
  public:
    CabMemory();

    MemoryProtection &protection() { return prot; }
    const MemoryProtection &protection() const { return prot; }

    /**
     * Read [addr, addr+len) into @p out.
     *
     * @return false on a protection violation or unmapped address
     *         (the access does not happen).
     */
    bool read(Domain domain, std::uint32_t addr, std::uint8_t *out,
              std::uint32_t len, Accessor by = Accessor::cpu);

    /** Write @p len bytes at @p addr.  PROM rejects all writes. */
    bool write(Domain domain, std::uint32_t addr,
               const std::uint8_t *src, std::uint32_t len,
               Accessor by = Accessor::cpu);

    /** Factory-program the PROM (bypasses protection; boot only). */
    void loadProm(std::uint32_t offset,
                  const std::vector<std::uint8_t> &image);

    /** True if [addr, addr+len) lies inside a mapped region. */
    bool mapped(std::uint32_t addr, std::uint32_t len) const;

    /** True if [addr, addr+len) lies entirely in data RAM. */
    bool
    inDataRam(std::uint32_t addr, std::uint32_t len) const
    {
        return addr >= addrmap::dataRamBase &&
               addr + len <= addrmap::dataRamBase + addrmap::dataRamSize &&
               addr + len >= addr;
    }

    /** Bytes moved by each accessor (bandwidth accounting). */
    std::uint64_t
    bytesBy(Accessor by) const
    {
        return byteCounts[static_cast<int>(by)].value();
    }

    /**
     * Account a bulk DMA transfer against the memory system without
     * going through read()/write() (used by the DMA engines, whose
     * payloads the simulator moves as shared buffers).
     */
    void
    account(Accessor by, std::uint64_t bytes)
    {
        byteCounts[static_cast<int>(by)].add(bytes);
    }

    /** Total bytes moved through the memory system. */
    std::uint64_t totalBytes() const;

    /** Accesses rejected because the address was unmapped. */
    std::uint64_t busErrors() const { return _busErrors.value(); }

  private:
    /** Map an address range to backing storage, or nullptr. */
    std::uint8_t *backing(std::uint32_t addr, std::uint32_t len);

    // nectar-lint: copy-ok the CAB's memory arrays themselves;
    // packets stay as PacketViews until DMA touches these
    std::vector<std::uint8_t> prom;
    // nectar-lint: copy-ok memory array backing store
    std::vector<std::uint8_t> programRam;
    // nectar-lint: copy-ok memory array backing store
    std::vector<std::uint8_t> dataRam;
    MemoryProtection prot;
    sim::Counter byteCounts[4];
    sim::Counter _busErrors;
};

} // namespace nectar::cab
