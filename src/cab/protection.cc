#include "protection.hh"

#include "sim/logging.hh"

namespace nectar::cab {

MemoryProtection::MemoryProtection(std::uint32_t addressSpaceBytes,
                                   std::uint32_t pageBytes, int domains)
    : pageBytes(pageBytes),
      pages((addressSpaceBytes + pageBytes - 1) / pageBytes),
      domains(domains)
{
    if (pageBytes == 0 || addressSpaceBytes == 0)
        sim::fatal("MemoryProtection: zero-sized space or page");
    if (domains < 1 || domains > 256)
        sim::fatal("MemoryProtection: bad domain count");
    // nectar-lint: copy-ok per-domain permission tables, not
    // packet payload
    tables.assign(domains, std::vector<std::uint8_t>(pages, permNone));
    // The kernel domain starts with full access, as the CAB kernel
    // owns the assignment of protection domains (Section 5.2).
    tables[kernelDomain].assign(pages, permAll);
}

void
MemoryProtection::setPerms(Domain domain, std::uint32_t addr,
                           std::uint32_t len, std::uint8_t perms)
{
    if (!validDomain(domain))
        sim::panic("MemoryProtection::setPerms: bad domain");
    if (len == 0)
        return;
    std::uint32_t first = addr / pageBytes;
    std::uint32_t last = (addr + len - 1) / pageBytes;
    if (last >= pages)
        sim::panic("MemoryProtection::setPerms: range out of space");
    for (std::uint32_t p = first; p <= last; ++p)
        tables[domain][p] = perms;
}

std::uint8_t
MemoryProtection::pagePerms(Domain domain, std::uint32_t addr) const
{
    if (!validDomain(domain))
        sim::panic("MemoryProtection::pagePerms: bad domain");
    std::uint32_t p = addr / pageBytes;
    if (p >= pages)
        sim::panic("MemoryProtection::pagePerms: address out of space");
    return tables[domain][p];
}

bool
MemoryProtection::check(Domain domain, std::uint32_t addr,
                        std::uint32_t len, std::uint8_t need)
{
    if (!validDomain(domain)) {
        _violations.add();
        return false;
    }
    if (len == 0)
        return true;
    std::uint32_t first = addr / pageBytes;
    std::uint32_t last = (addr + len - 1) / pageBytes;
    if (last >= pages || addr + len < addr) {
        _violations.add();
        return false;
    }
    for (std::uint32_t p = first; p <= last; ++p) {
        if ((tables[domain][p] & need) != need) {
            _violations.add();
            return false;
        }
    }
    return true;
}

void
MemoryProtection::clearDomain(Domain domain)
{
    if (!validDomain(domain))
        sim::panic("MemoryProtection::clearDomain: bad domain");
    tables[domain].assign(pages, permNone);
}

} // namespace nectar::cab
