/**
 * @file
 * Load-sweep harness over ServingWorkload: step offered load across a
 * geometric ladder, measure the latency/goodput curve, and locate the
 * saturation knee.
 *
 * The knee is the classic open-loop signature: below capacity, tail
 * latency is flat as load grows; at the knee, queues stop draining
 * between arrivals and p99 inflates much faster than load.  We flag
 * the first step whose relative p99 growth exceeds kneeSlope times
 * the relative load growth, or whose achieved/offered completion
 * ratio falls below minCompletion (the system visibly shedding or
 * failing is saturation even if latency has not yet exploded).
 */

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "serving/serving.hh"

namespace nectar::serving {

/** Builds a fresh system on a fresh event queue for one sweep step. */
using SystemBuilder =
    std::function<std::unique_ptr<nectarine::NectarSystem>(
        sim::EventQueue &)>;

/** Parameters for runSweep(). */
struct SweepConfig
{
    std::string fabric = "single_hub"; ///< Label for reports.

    /** Per-step serving parameters; offeredRps is overridden by the
     *  ladder below. */
    ServingConfig serving;

    double startRps = 20'000;  ///< First step's offered load.
    double growth = 1.6;       ///< Ratio between successive steps.
    int steps = 6;             ///< Ladder length.

    /** Knee: relative p99 growth > kneeSlope x relative load growth. */
    double kneeSlope = 3.0;
    /** Knee: achieved/offered below this is saturation outright. */
    double minCompletion = 0.9;
};

/** One step of the sweep: what was offered and what was measured. */
struct SweepStep
{
    double offeredRps = 0;
    ServingReport report;
};

/** A whole sweep over one fabric. */
struct SweepResult
{
    std::string fabric;
    Arrival arrival = Arrival::poisson;
    std::vector<SweepStep> steps;
    int kneeIndex = -1;   ///< First saturated step, -1 if none.
    double kneeRps = 0;   ///< Offered load at the knee.
};

/**
 * Find the saturation knee in @p steps.
 *
 * @return Index of the first step matching either criterion, or -1.
 */
int detectKnee(const std::vector<SweepStep> &steps, double kneeSlope,
               double minCompletion);

/**
 * Run the sweep: for each rung of the load ladder, build a fresh
 * system with @p build, run a ServingWorkload at that offered load to
 * completion, and record its report.  Deterministic: the serving seed
 * is reused per step, so the whole SweepResult is a pure function of
 * (builder, config).
 */
SweepResult runSweep(const SystemBuilder &build,
                     const SweepConfig &cfg);

/**
 * Write @p results as BENCH_serving-style JSON: a top-level
 * "knee_found_all" flag plus one sweep object per result with its
 * per-step latency/goodput table.
 */
void writeServingJson(const std::string &path,
                      const std::vector<SweepResult> &results);

} // namespace nectar::serving
