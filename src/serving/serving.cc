#include "serving.hh"

#include <algorithm>
#include <cmath>

#include "sim/coro.hh"
#include "sim/logging.hh"

namespace nectar::serving {

using sim::Task;

namespace {

/** Service mailbox id on every site (below the task-inbox range). */
constexpr std::uint16_t servingMailbox = 0x0FFE;

/** Fit requests and responses in one MTU (transport RPC limit). */
constexpr std::uint32_t maxRpcBytes = 768;

/** splitmix64: whitens correlated seed inputs into independent
 *  PCG seeds (adjacent integers map to distant states). */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

/** Per-host PCG stream selector base (distinct from other users). */
constexpr std::uint64_t servingStream = 0x73657276696E67ull;

} // namespace

const char *
arrivalName(Arrival a)
{
    switch (a) {
    case Arrival::poisson:
        return "poisson";
    case Arrival::bursty:
        return "bursty";
    case Arrival::hotspot:
        return "hotspot";
    case Arrival::closed:
        return "closed";
    }
    return "unknown";
}

ServingWorkload::ServingWorkload(nectarine::NectarSystem &sys,
                                 const ServingConfig &config)
    : sys(sys), cfg(config)
{
    const std::size_t n = sys.siteCount();
    if (n < 2)
        sim::fatal("ServingWorkload: need at least two sites");
    cfg.requestBytes =
        std::clamp<std::uint32_t>(cfg.requestBytes, 8, maxRpcBytes);
    cfg.responseBytes =
        std::clamp<std::uint32_t>(cfg.responseBytes, 1, maxRpcBytes);
    cfg.flows = std::max<std::uint64_t>(cfg.flows, 1);
    served.assign(n, 0);

    if (cfg.arrival == Arrival::hotspot) {
        // Zipf CDF over destination sites: site r gets weight
        // (r+1)^-skew; sampled by inversion, so one uniform draw per
        // arrival and fully deterministic.
        zipfCdf.resize(n);
        double sum = 0.0;
        for (std::size_t r = 0; r < n; ++r) {
            sum += std::pow(static_cast<double>(r + 1),
                            -cfg.zipfSkew);
            zipfCdf[r] = sum;
        }
        for (auto &c : zipfCdf)
            c /= sum;
    }

    hosts.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        // Each host draws from its own whitened seed AND its own PCG
        // stream: no host's draw count ever perturbs another's.
        hosts.push_back(std::make_unique<HostState>(
            mix64(cfg.seed ^ (i + 1)), servingStream + 2 * i + 1));
        sys.site(i).kernel->createMailbox("serving_srv", 1 << 20,
                                          servingMailbox);
        sim::spawn(serverLoop(i));
    }
    for (std::size_t i = 0; i < n; ++i) {
        if (cfg.arrival == Arrival::closed) {
            for (int w = 0; w < cfg.closedConcurrency; ++w)
                sim::spawn(closedWorker(i, w));
        } else {
            sim::spawn(driverLoop(i));
        }
    }
}

Task<void>
ServingWorkload::serverLoop(std::size_t site)
{
    nectarine::CabSite &s = sys.site(site);
    cabos::Mailbox *mb = s.kernel->mailbox(servingMailbox);
    for (;;) {
        auto m = co_await mb->get();
        ++served[site];
        co_await s.kernel->compute(cfg.serverCompute);
        std::vector<std::uint8_t> resp(
            cfg.responseBytes, static_cast<std::uint8_t>(site));
        s.transport->respond(m.tag, std::move(resp));
    }
}

std::size_t
ServingWorkload::pickDestination(std::size_t host, HostState &hs)
{
    const std::size_t n = sys.siteCount();
    std::size_t d;
    if (cfg.arrival == Arrival::hotspot) {
        double u = hs.rng.uniform();
        d = static_cast<std::size_t>(
            std::lower_bound(zipfCdf.begin(), zipfCdf.end(), u) -
            zipfCdf.begin());
        d = std::min(d, n - 1);
        if (d == host)
            d = (d + 1) % n;
    } else {
        d = hs.rng.below(static_cast<std::uint32_t>(n - 1));
        if (d >= host)
            ++d; // uniform over the n-1 other sites
    }
    return d;
}

sim::EventQueue &
ServingWorkload::queueAt(std::size_t site)
{
    // The site's whole stack shares one queue; under the parallel
    // engine it is the site's cluster shard, so a host's coroutines
    // run on (and only on) that cluster's worker.
    return sys.site(site).transport->eventq();
}

bool
ServingWorkload::admitArrival(std::size_t host, HostState &hs)
{
    ++hs.arrivals;
    if (hs.outstanding >= cfg.maxOutstandingPerHost) {
        ++hs.shed;
        return false;
    }

    std::uint64_t flowId;
    if (cfg.flows <= 0xFFFFFFFFull) {
        flowId =
            hs.rng.below(static_cast<std::uint32_t>(cfg.flows));
    } else {
        flowId = ((static_cast<std::uint64_t>(hs.rng.next()) << 32) |
                  hs.rng.next()) %
                 cfg.flows;
    }

    // Lazy flow state: materialized on first use, seeded from the
    // flow id alone so any future request of the same flow derives
    // the same stream.
    FlowEntry &fe = hs.table[flowId];
    if (fe.outstanding == 0 && fe.seq == 0)
        fe.flowSeed = mix64(cfg.seed ^ mix64(flowId));
    ++fe.outstanding;
    ++fe.seq;
    ++hs.outstanding;
    hs.peakTable =
        std::max<std::uint64_t>(hs.peakTable, hs.table.size());

    std::size_t dst = pickDestination(host, hs);
    std::uint64_t payloadSeed =
        fe.flowSeed + 0x9E3779B97F4A7C15ull * fe.seq;
    ++hs.issued;
    sim::spawn(requestOnce(host, dst, flowId, payloadSeed));
    return true;
}

Task<void>
ServingWorkload::requestOnce(std::size_t host, std::size_t dst,
                             std::uint64_t flowId,
                             std::uint64_t payloadSeed)
{
    nectarine::CabSite &site = sys.site(host);
    HostState &hs = *hosts[host];
    sim::EventQueue &eq = queueAt(host);
    Tick t0 = eq.now();

    std::vector<std::uint8_t> req(cfg.requestBytes);
    std::uint64_t pat = payloadSeed;
    for (std::size_t i = 0; i < req.size(); ++i) {
        if ((i & 7) == 0)
            pat = mix64(pat);
        req[i] = static_cast<std::uint8_t>(pat >> (8 * (i & 7)));
    }

    auto resp = co_await site.transport->request(
        sys.site(dst).address, servingMailbox, std::move(req));

    if (resp) {
        ++hs.completed;
        hs.goodputBytes += cfg.requestBytes + resp->size();
        hs.latency.record(static_cast<double>(eq.now() - t0));
        hs.lastDoneAt = std::max(hs.lastDoneAt, eq.now());
    } else {
        ++hs.failed;
    }
    finishFlow(host, flowId);
}

void
ServingWorkload::finishFlow(std::size_t host, std::uint64_t flowId)
{
    HostState &hs = *hosts[host];
    auto it = hs.table.find(flowId);
    if (it != hs.table.end() && --it->second.outstanding == 0)
        hs.table.erase(it);
    if (hs.outstanding > 0)
        --hs.outstanding;
}

Task<void>
ServingWorkload::driverLoop(std::size_t host)
{
    HostState &hs = *hosts[host];
    sim::EventQueue &eq = queueAt(host);
    const double hostsD = static_cast<double>(sys.siteCount());
    const double meanGapNs =
        hostsD * 1e9 / std::max(cfg.offeredRps, 1.0);

    // MMPP: ON-state arrivals run faster by the duty cycle so the
    // long-run offered load still averages offeredRps.
    const double onDwell =
        static_cast<double>(std::max<Tick>(cfg.burstOnMean, 1));
    const double offDwell =
        static_cast<double>(std::max<Tick>(cfg.burstOffMean, 0));
    const double duty = onDwell / (onDwell + offDwell);
    bool on = true;
    Tick stateEnd = 0;
    if (cfg.arrival == Arrival::bursty)
        stateEnd = static_cast<Tick>(
            std::max(1.0, hs.rng.exponential(onDwell)));

    for (;;) {
        if (cfg.maxArrivalsPerHost > 0 &&
            hs.arrivals >= cfg.maxArrivalsPerHost)
            break;
        if (eq.now() >= cfg.duration)
            break;

        double gapMean = meanGapNs;
        if (cfg.arrival == Arrival::bursty) {
            while (eq.now() >= stateEnd) {
                on = !on;
                stateEnd += static_cast<Tick>(std::max(
                    1.0,
                    hs.rng.exponential(on ? onDwell : offDwell)));
            }
            if (!on) {
                co_await sim::Delay(eq, stateEnd - eq.now());
                continue;
            }
            gapMean = meanGapNs * duty;
        }

        auto gap = static_cast<Tick>(
            std::max(1.0, hs.rng.exponential(gapMean)));
        co_await sim::Delay(eq, gap);
        if (eq.now() >= cfg.duration)
            break;
        admitArrival(host, hs);
    }
}

Task<void>
ServingWorkload::closedWorker(std::size_t host, int worker)
{
    HostState &hs = *hosts[host];
    sim::EventQueue &eq = queueAt(host);
    // Stagger worker start so a host's workers do not fire in
    // lockstep at tick zero.
    co_await sim::Delay(
        eq, static_cast<Tick>(worker + 1) * 7 * us);

    while (eq.now() < cfg.duration) {
        if (cfg.maxArrivalsPerHost > 0 &&
            hs.arrivals >= cfg.maxArrivalsPerHost)
            break;
        ++hs.arrivals;

        std::uint64_t flowId = hs.rng.below(static_cast<std::uint32_t>(
            std::min<std::uint64_t>(cfg.flows, 0xFFFFFFFFull)));
        FlowEntry &fe = hs.table[flowId];
        if (fe.outstanding == 0 && fe.seq == 0)
            fe.flowSeed = mix64(cfg.seed ^ mix64(flowId));
        ++fe.outstanding;
        ++fe.seq;
        ++hs.outstanding;
        hs.peakTable =
            std::max<std::uint64_t>(hs.peakTable, hs.table.size());
        std::size_t dst = pickDestination(host, hs);
        std::uint64_t payloadSeed =
            fe.flowSeed + 0x9E3779B97F4A7C15ull * fe.seq;
        ++hs.issued;

        // Closed loop: wait for the response before the next send.
        co_await requestOnce(host, dst, flowId, payloadSeed);

        if (cfg.closedThink > 0)
            co_await sim::Delay(eq, cfg.closedThink);
    }
}

const sim::Histogram &
ServingWorkload::latency() const
{
    // Merge order is host order, and Histogram::merge is bucket-exact
    // and order-independent, so this reads the same whichever
    // assembly ran the workload.
    _mergedLatency.reset();
    for (const auto &h : hosts)
        _mergedLatency.merge(h->latency);
    return _mergedLatency;
}

std::uint64_t
ServingWorkload::peakFlowTableEntries() const
{
    std::uint64_t peak = 0;
    for (const auto &h : hosts)
        peak = std::max(peak, h->peakTable);
    return peak;
}

ServingReport
ServingWorkload::report() const
{
    ServingReport r;
    std::uint64_t goodputBytes = 0;
    for (const auto &h : hosts) {
        r.arrivals += h->arrivals;
        r.issued += h->issued;
        r.completed += h->completed;
        r.failed += h->failed;
        r.shed += h->shed;
        goodputBytes += h->goodputBytes;
        r.peakFlowTable = std::max(r.peakFlowTable, h->peakTable);
        r.lastDoneAt = std::max(r.lastDoneAt, h->lastDoneAt);
    }
    const sim::Histogram &lat = latency();
    r.p50Ns = lat.percentile(50.0);
    r.p99Ns = lat.percentile(99.0);
    r.p999Ns = lat.percentile(99.9);
    r.meanNs = lat.mean();
    Tick window = std::max(cfg.duration, r.lastDoneAt);
    if (window > 0) {
        double seconds =
            static_cast<double>(window) / static_cast<double>(sec);
        r.achievedRps = static_cast<double>(r.completed) / seconds;
        r.goodputMBs = static_cast<double>(goodputBytes) /
                       (seconds * 1e6);
    }
    return r;
}

} // namespace nectar::serving
