#include "sweep.hh"

#include <fstream>

#include "sim/logging.hh"

namespace nectar::serving {

int
detectKnee(const std::vector<SweepStep> &steps, double kneeSlope,
           double minCompletion)
{
    for (std::size_t i = 0; i < steps.size(); ++i) {
        const SweepStep &s = steps[i];
        if (s.offeredRps > 0 &&
            s.report.achievedRps / s.offeredRps < minCompletion)
            return static_cast<int>(i);
        if (i == 0)
            continue;
        const SweepStep &prev = steps[i - 1];
        if (prev.report.p99Ns <= 0 || prev.offeredRps <= 0)
            continue;
        double latGrowth =
            (s.report.p99Ns - prev.report.p99Ns) / prev.report.p99Ns;
        double loadGrowth =
            (s.offeredRps - prev.offeredRps) / prev.offeredRps;
        if (loadGrowth > 0 && latGrowth > kneeSlope * loadGrowth)
            return static_cast<int>(i);
    }
    return -1;
}

SweepResult
runSweep(const SystemBuilder &build, const SweepConfig &cfg)
{
    if (cfg.steps < 1)
        sim::fatal("runSweep: need at least one step");
    if (cfg.growth <= 1.0)
        sim::fatal("runSweep: growth must exceed 1");

    SweepResult result;
    result.fabric = cfg.fabric;
    result.arrival = cfg.serving.arrival;

    double offered = cfg.startRps;
    for (int i = 0; i < cfg.steps; ++i, offered *= cfg.growth) {
        sim::EventQueue eq;
        auto sys = build(eq);
        ServingConfig sc = cfg.serving;
        sc.offeredRps = offered;
        ServingWorkload w(*sys, sc);
        eq.run();
        result.steps.push_back(SweepStep{offered, w.report()});
    }
    result.kneeIndex =
        detectKnee(result.steps, cfg.kneeSlope, cfg.minCompletion);
    if (result.kneeIndex >= 0)
        result.kneeRps =
            result.steps[static_cast<std::size_t>(result.kneeIndex)]
                .offeredRps;
    return result;
}

void
writeServingJson(const std::string &path,
                 const std::vector<SweepResult> &results)
{
    bool kneeAll = !results.empty();
    for (const SweepResult &r : results)
        kneeAll = kneeAll && r.kneeIndex >= 0;

    std::ofstream out(path);
    out << "{\n  \"bench\": \"serving\",\n";
    out << "  \"knee_found_all\": " << (kneeAll ? "true" : "false")
        << ",\n";
    out << "  \"sweeps\": [\n";
    for (std::size_t s = 0; s < results.size(); ++s) {
        const SweepResult &r = results[s];
        out << "    {\"fabric\": \"" << r.fabric
            << "\", \"arrival\": \"" << arrivalName(r.arrival)
            << "\", \"knee_index\": " << r.kneeIndex
            << ", \"knee_rps\": " << r.kneeRps << ",\n";
        out << "     \"steps\": [\n";
        for (std::size_t i = 0; i < r.steps.size(); ++i) {
            const SweepStep &st = r.steps[i];
            const ServingReport &rep = st.report;
            out << "       {\"offered_rps\": " << st.offeredRps
                << ", \"achieved_rps\": " << rep.achievedRps
                << ", \"goodput_MBs\": " << rep.goodputMBs
                << ", \"p50_us\": " << rep.p50Ns / 1e3
                << ", \"p99_us\": " << rep.p99Ns / 1e3
                << ", \"p999_us\": " << rep.p999Ns / 1e3
                << ", \"completed\": " << rep.completed
                << ", \"failed\": " << rep.failed
                << ", \"shed\": " << rep.shed << "}"
                << (i + 1 < r.steps.size() ? "," : "") << "\n";
        }
        out << "     ]}" << (s + 1 < results.size() ? "," : "")
            << "\n";
    }
    out << "  ]\n}\n";
}

} // namespace nectar::serving
