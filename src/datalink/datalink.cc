#include "datalink.hh"

#include "sim/logging.hh"
#include "sim/owner.hh"

namespace nectar::datalink {

using hub::Op;
using phys::WireItem;

Datalink::Datalink(cabos::Kernel &kernel, const DatalinkConfig &config)
    : sim::Component(kernel.eventq(), kernel.board().name() + ".dl"),
      _kernel(kernel), cfg(config), txMutex(kernel.eventq())
{
    cab::Cab &board = kernel.board();
    board.onPacketStart = [this] { handlePacketStart(); };
    board.onPacketComplete = [this](sim::PacketView &&p, bool c) {
        handlePacketComplete(std::move(p), c);
    };
    board.onReply = [this](const phys::ReplyWord &r) { handleReply(r); };
    board.onReadySignal = [this] { handleReadySignal(); };
}

// --------------------------------------------------------------------
// Receive path.
// --------------------------------------------------------------------

void
Datalink::handlePacketStart()
{
    // "During a receive, the datalink interrupt handler, invoked by
    // the start of packet signal, executes an upcall to a transport
    // layer routine ... The datalink layer then sets up the DMA to
    // transfer the incoming data to the destination mailbox"
    // (Section 6.2.1).  The upcall's cost is what races the input
    // queue.
    const auto &costs = board().costs();
    Tick upcall_cost = costs.interruptDispatch +
                       costs.datalinkPerPacket + costs.transportUpcall +
                       costs.dmaSetup;
    // Bind the accept to this packet: if a second start of packet
    // outruns the upcall, this accept must not claim the newcomer.
    std::uint64_t gen = board().rxGeneration();
    board().cpu().chargeThen(
        upcall_cost, [this, gen] { board().acceptPacket(gen); });
}

void
Datalink::handlePacketComplete(sim::PacketView &&packet,
                               bool corrupted)
{
    _stats.packetsReceived.add();
    if (corrupted)
        _stats.corruptPackets.add();
    if (rxHandler)
        rxHandler(std::move(packet), corrupted);
}

void
Datalink::handleReply(const phys::ReplyWord &reply)
{
    Op op = static_cast<Op>(reply.op);
    if (op == Op::queryConn || op == Op::queryReady ||
        op == Op::queryLock || op == Op::svQueryErrors) {
        if (queryHook) {
            queryHook(reply);
            return;
        }
    }
    if (replyWait.signal == nullptr) {
        _stats.staleReplies.add();
        return;
    }
    if (reply.status != hub::status::success)
        replyWait.failed = true;
    if (++replyWait.got >= replyWait.need)
        replyWait.signal->push(!replyWait.failed);
}

void
Datalink::handleReadySignal()
{
    _hubReady = true;
    auto waiters = std::move(readyWaiters);
    readyWaiters.clear();
    for (auto *ch : waiters)
        ch->push(true);
}

// --------------------------------------------------------------------
// Transmit path.
// --------------------------------------------------------------------

sim::Task<bool>
Datalink::waitHubReady()
{
    const Tick deadline = now() + cfg.readyTimeout;
    while (!_hubReady) {
        if (now() >= deadline) {
            // The ready signal is not coming: it (or the packet whose
            // emergence downstream triggers it) died on the way.
            // Presume the port drained and let route recovery resync.
            _stats.readyTimeouts.add();
            _hubReady = true;
            co_return false;
        }
        sim::Channel<bool> arrived(eventq());
        readyWaiters.push_back(&arrived);
        // nectar-lint: capture-ok timer fires only while this frame
        // is suspended on pop() below, and is cancelled on resume
        sim::EventId timer = eventq().scheduleIn(
            deadline - now(), [&arrived] { arrived.push(false); },
            sim::EventPriority::software);
        co_await arrived.pop();
        eventq().cancel(timer);
        std::erase(readyWaiters, &arrived);
    }
    co_return true;
}

sim::Task<bool>
Datalink::waitReplies(int need)
{
    if (need <= 0)
        co_return true;

    sim::Channel<bool> signal(eventq());
    replyWait = ReplyWait{need, 0, false, &signal};

    // Race the replies against a timeout.
    // nectar-lint: capture-ok timer fires only while this frame is
    // suspended on pop() below, and is cancelled on resume
    sim::EventId timer = eventq().scheduleIn(
        cfg.replyTimeout, [&signal] { signal.push(false); },
        sim::EventPriority::software);

    bool ok = co_await signal.pop();
    eventq().cancel(timer);
    bool timed_out = !ok && replyWait.got < replyWait.need;
    replyWait = ReplyWait{};
    if (timed_out)
        _stats.routeTimeouts.add();
    co_return ok;
}

sim::Task<void>
Datalink::dmaSendAwait(std::vector<phys::WireItem> items)
{
    sim::Channel<bool> done(eventq());
    board().dmaSend(std::move(items), [&done] { done.push(true); });
    co_await done.pop();
}

std::vector<WireItem>
Datalink::buildPacketFrame(const topo::Route &route,
                           const phys::Payload &payload)
{
    std::vector<WireItem> items;
    for (const auto &hop : route) {
        items.push_back(WireItem::command(
            static_cast<std::uint8_t>(Op::testOpenRetry), hop.hubId,
            static_cast<std::uint8_t>(hop.outPort)));
    }
    auto frame = board().framePacket(payload);
    items.insert(items.end(), frame.begin(), frame.end());
    items.push_back(WireItem::command(
        static_cast<std::uint8_t>(Op::closeAll), 0, 0));
    return items;
}

sim::Task<void>
Datalink::recoverRoute()
{
    // "CAB3 can also decide to take down all the existing connections
    // by using close all, and attempt to re-establish an entire
    // route" (Section 4.2.1).  The closeAll chases any still-pending
    // opens through the route and closes behind them.
    _stats.recoveries.add();
    board().sendControl(WireItem::command(
        static_cast<std::uint8_t>(Op::closeAll), 0, 0));
    co_await _kernel.sleepFor(cfg.recoverySettle);
}

sim::Task<bool>
Datalink::attemptSend(const topo::Route &route,
                      const phys::Payload &payload, SwitchMode mode)
{
    const auto &costs = board().costs();

    // Software cost of building the command packet / frame.  A
    // scatter-gathered payload charges one descriptor load per
    // segment beyond the first (cost_model.hh dmaSegmentSetup).
    const auto extra_segs = payload.segmentCount() > 0
        ? static_cast<Tick>(payload.segmentCount() - 1)
        : 0;
    co_await board().cpu().compute(costs.datalinkPerPacket +
                                   costs.dmaSetup +
                                   extra_segs * costs.dmaSegmentSetup);

    // Hop-by-hop flow control: wait for our HUB port's input queue.
    if (!co_await waitHubReady())
        co_return false; // ready signal lost; recover and retry

    if (mode == SwitchMode::packet) {
        std::vector<WireItem> items = buildPacketFrame(route, payload);
        _hubReady = false; // our SOP will pass the HUB's port
        co_await dmaSendAwait(std::move(items));
        co_return true;
    }

    // Circuit switching: open the route first (Section 4.2.1).
    int need_replies = 0;
    for (const auto &hop : route) {
        Op op = hop.reply ? Op::openRetryReply : Op::openRetry;
        if (hop.reply)
            ++need_replies;
        board().sendControl(WireItem::command(
            static_cast<std::uint8_t>(op), hop.hubId,
            static_cast<std::uint8_t>(hop.outPort)));
    }

    bool ok = co_await waitReplies(need_replies);
    if (!ok)
        co_return false;

    // Route confirmed: stream the data and close behind it.
    auto items = board().framePacket(payload);
    items.push_back(WireItem::command(
        static_cast<std::uint8_t>(Op::closeAll), 0, 0));
    _hubReady = false;
    co_await dmaSendAwait(std::move(items));
    co_return true;
}

sim::Task<bool>
Datalink::sendPacket(topo::Route route, phys::Payload payload,
                     SwitchMode mode)
{
    SIM_OWNER_INVARIANT(*this, _kernel.board(),
                        name() + ": datalink off its board's cluster");
    if (route.empty())
        sim::panic(name() + ": empty route");
    if (mode == SwitchMode::packet) {
        // SOP + EOP + data + per-hop command + closeAll must fit the
        // downstream input queues (Section 4.2.3).
        std::uint32_t wire = 2 +
            static_cast<std::uint32_t>(payload.size()) +
            3 * (static_cast<std::uint32_t>(route.size()) + 1);
        if (wire > cfg.maxWirePacketBytes) {
            sim::fatal(name() + ": packet-switched frame of " +
                       std::to_string(wire) +
                       " bytes exceeds the HUB input queue; use "
                       "circuit switching for large packets");
        }
    }

    co_await txMutex.lock();
    bool sent = false;
    for (int attempt = 1; attempt <= cfg.maxAttempts; ++attempt) {
        sent = co_await attemptSend(route, payload, mode);
        if (sent)
            break;
        co_await recoverRoute();
        co_await _kernel.sleepFor(cfg.retryBackoff * attempt);
    }
    txMutex.unlock();

    if (sent) {
        _stats.packetsSent.add();
        _stats.bytesSent.add(payload.size());
    } else {
        _stats.sendFailures.add();
    }
    co_return sent;
}

sim::Task<std::optional<int>>
Datalink::queryConnection(std::uint8_t hubId, int port)
{
    sim::Channel<int> answer(eventq());
    queryHook = [&answer](const phys::ReplyWord &r) {
        answer.push(r.status);
    };
    board().sendControl(WireItem::command(
        static_cast<std::uint8_t>(Op::queryConn), hubId,
        static_cast<std::uint8_t>(port)));

    // nectar-lint: capture-ok timer fires only while this frame is
    // suspended on pop() below, and is cancelled on resume
    sim::EventId timer = eventq().scheduleIn(
        cfg.replyTimeout, [&answer] { answer.push(-1); },
        sim::EventPriority::software);

    int result = co_await answer.pop();
    eventq().cancel(timer);
    queryHook = nullptr;

    if (result < 0)
        co_return std::nullopt;
    if (result == hub::status::none)
        co_return hub::noPort;
    co_return result;
}

} // namespace nectar::datalink
