/**
 * @file
 * The CAB datalink protocol.
 *
 * Section 6.2.1: "The datalink protocol transfers data packets
 * between CABs using HUB commands, manages HUB connections, and
 * recovers from framing errors and lost HUB commands.  The most
 * frequently used simple operations, such as sending a packet to a
 * node in the same HUB cluster, are implemented in hardware as a
 * single HUB command, while more complicated and less frequent
 * operations, such as multicasting and error recovery, are
 * implemented in software."
 *
 * The datalink builds the command packets of Sections 4.2.1-4.2.4
 * (circuit or packet switching, unicast or multicast), waits for
 * open replies where the route requests them, tracks the hop-by-hop
 * ready bit of its HUB port, and on timeout tears the route down with
 * closeAll and retries with backoff — the recovery procedure the
 * paper sketches at the end of Section 4.2.1.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cabos/kernel.hh"
#include "hub/commands.hh"
#include "sim/component.hh"
#include "sim/coro.hh"
#include "topo/topology.hh"

namespace nectar::datalink {

using sim::Tick;
using namespace sim::ticks;

/** Connection discipline for a transfer (Sections 4.2.1 / 4.2.3). */
enum class SwitchMode {
    circuit, ///< Open route first (with reply), then stream data.
    packet,  ///< test-open flow control; data store-and-forwards.
};

/** Datalink tuning. */
struct DatalinkConfig
{
    /** Wait for route-open replies before declaring failure. */
    Tick replyTimeout = 200 * us;
    /** Attempts at establishing a route before giving up. */
    int maxAttempts = 5;
    /** Base backoff between route attempts (scaled by attempt). */
    Tick retryBackoff = 100 * us;
    /** Settle time after recovery, during which stale replies drain. */
    Tick recoverySettle = 50 * us;
    /**
     * Bound on waiting for the HUB port's ready signal.  The signal
     * is a single wire item; if the packet it trails (or the signal
     * itself) dies on a dark fiber it will never arrive, so after
     * this long the datalink presumes it lost and falls into the
     * closeAll-and-retry recovery of Section 4.2.1.
     */
    Tick readyTimeout = 300 * us;
    /**
     * Largest wire packet (framing + data + trailing commands) that
     * packet switching may emit; bounded by the HUB input queue
     * (Section 4.2.3).
     */
    std::uint32_t maxWirePacketBytes = sim::proto::hubInputQueueBytes;
};

/** Datalink statistics. */
struct DatalinkStats
{
    sim::Counter packetsSent;
    sim::Counter packetsReceived;
    sim::Counter bytesSent;
    sim::Counter routeTimeouts;   ///< Reply timeouts -> recovery.
    sim::Counter readyTimeouts;   ///< Lost ready signals presumed.
    sim::Counter recoveries;      ///< closeAll teardowns issued.
    sim::Counter sendFailures;    ///< Gave up after maxAttempts.
    sim::Counter staleReplies;    ///< Replies discarded while settling.
    sim::Counter corruptPackets;  ///< Received with bad data flag.
};

/**
 * Per-CAB datalink instance.  Runs as interrupt handlers plus
 * coroutines on the CAB ("The datalink code is executed entirely by
 * interrupt handlers and by procedures that are called from transport
 * or application threads", Section 6.2.1).
 */
class Datalink : public sim::Component
{
  public:
    /**
     * @param kernel The CAB kernel (board access, costs, threads).
     * @param config Tuning parameters.
     */
    explicit Datalink(cabos::Kernel &kernel,
                      const DatalinkConfig &config = {});

    cabos::Kernel &kernel() { return _kernel; }
    cab::Cab &board() { return _kernel.board(); }
    DatalinkStats &stats() { return _stats; }
    const DatalinkConfig &config() const { return cfg; }

    /**
     * Receive upcall: invoked with each complete packet's view (a
     * zero-copy chain over the received wire chunks).  The transport
     * layer registers this.
     */
    std::function<void(sim::PacketView &&, bool corrupted)> rxHandler;

    /**
     * Send one data packet along @p route.
     *
     * Packet mode requires the framed packet to fit the HUB input
     * queue; circuit mode streams data of any size once the route is
     * confirmed by the reply.
     *
     * Transmissions from one CAB are serialized (single outgoing
     * fiber); concurrent callers queue on an internal mutex.
     *
     * @return true once the packet has been fully transmitted (and,
     *         in circuit mode, the route was confirmed); false if the
     *         route could not be established in maxAttempts.
     */
    sim::Task<bool> sendPacket(topo::Route route, phys::Payload payload,
                               SwitchMode mode = SwitchMode::packet);

    /**
     * Ask this CAB's HUB for the connection status of one of its
     * ports (the recovery diagnostic of Section 4.2.1).
     *
     * @param hubId The directly attached HUB's id.
     * @param port Port to interrogate.
     * @return The owning input port, hub::noPort if free, or nullopt
     *         on timeout.
     */
    sim::Task<std::optional<int>> queryConnection(std::uint8_t hubId,
                                                  int port);

    /** True when our HUB port can accept a new packet. */
    bool hubReady() const { return _hubReady; }

  private:
    /** One route-establishment + transmit attempt. */
    sim::Task<bool> attemptSend(const topo::Route &route,
                                const phys::Payload &payload,
                                SwitchMode mode);

    /** Tear down whatever part of the route was built, then settle. */
    sim::Task<void> recoverRoute();

    /**
     * Suspend until the HUB port is ready for a new packet.
     * @return false if the ready signal did not arrive within
     *         readyTimeout and was presumed lost.
     */
    sim::Task<bool> waitHubReady();

    /**
     * Wait for @p need replies (or timeout).
     * @return true if all replies arrived with success status.
     */
    sim::Task<bool> waitReplies(int need);

    /** Build the wire items for a whole packet-switched frame. */
    std::vector<phys::WireItem>
    buildPacketFrame(const topo::Route &route,
                     const phys::Payload &payload);

    /** Await DMA completion of @p items. */
    sim::Task<void> dmaSendAwait(std::vector<phys::WireItem> items);

    // Hardware interrupt handlers.
    void handlePacketStart();
    void handlePacketComplete(sim::PacketView &&packet,
                              bool corrupted);
    void handleReply(const phys::ReplyWord &reply);
    void handleReadySignal();

    cabos::Kernel &_kernel;
    DatalinkConfig cfg;
    DatalinkStats _stats;

    sim::AsyncMutex txMutex;

    // Reply-waiting state: a fresh channel per wait; stale replies
    // arriving outside a wait (or during settle) are discarded.
    struct ReplyWait
    {
        int need = 0;
        int got = 0;
        bool failed = false;
        sim::Channel<bool> *signal = nullptr;
    };
    ReplyWait replyWait;

    // Hop-by-hop flow control toward our HUB port.
    bool _hubReady = true;
    std::vector<sim::Channel<bool> *> readyWaiters;

    // Pending status-query reply.
    std::function<void(const phys::ReplyWord &)> queryHook;
};

} // namespace nectar::datalink
