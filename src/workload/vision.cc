#include "vision.hh"

#include "sim/logging.hh"
#include "sim/random.hh"

namespace nectar::workload {

using nectarine::TaskContext;
using nectarine::TaskId;
using sim::Task;

namespace {

int visionCounter = 0;

constexpr std::uint8_t kindFeature = 0xF0;
constexpr std::uint8_t kindQuery = 0x0A;

void
putTick(std::vector<std::uint8_t> &v, std::size_t off, Tick t)
{
    for (int i = 0; i < 8; ++i)
        v[off + i] = static_cast<std::uint8_t>(
            static_cast<std::uint64_t>(t) >> (56 - 8 * i));
}

Tick
getTick(const sim::PacketView &v, std::size_t off)
{
    std::uint64_t t = 0;
    for (int i = 0; i < 8; ++i)
        t = (t << 8) | v[off + i];
    return static_cast<Tick>(t);
}

} // namespace

VisionWorkload::VisionWorkload(nectarine::Nectarine &api,
                               std::size_t cameraSite,
                               std::size_t warpSite,
                               std::vector<std::size_t> dbSites,
                               std::vector<std::size_t> clientSites,
                               const Config &config)
    : cfg(config), clientCount(static_cast<int>(clientSites.size()))
{
    if (dbSites.empty())
        sim::fatal("VisionWorkload: need at least one database shard");

    const std::string run = std::to_string(visionCounter++);

    // --- Database shards: store features, answer spatial queries.
    std::vector<TaskId> shards;
    for (std::size_t s = 0; s < dbSites.size(); ++s) {
        shards.push_back(api.createTask(
            dbSites[s], "db" + run + "_" + std::to_string(s),
            [this](TaskContext &ctx) -> Task<void> {
                for (;;) {
                    auto m = co_await ctx.receive();
                    if (m.view().empty())
                        continue;
                    if (m.view()[0] == kindFeature) {
                        // A frame's features are now stored: the
                        // pipeline latency ends here.
                        _frameLat.record(static_cast<double>(
                            ctx.now() - getTick(m.view(), 1)));
                        ++_frames;
                    } else if (m.view()[0] == kindQuery) {
                        co_await ctx.compute(cfg.dbComputePerQuery);
                        std::vector<std::uint8_t> answer(
                            cfg.answerBytes, 0xA5);
                        ctx.reply(m, std::move(answer));
                        ++_queries;
                    }
                }
            }));
    }

    // --- The Warp machine: low-level vision per frame, then feature
    //     scatter (Section 7: Warp for low-level analysis).
    TaskId warp = api.createTask(
        warpSite, "warp" + run,
        [this, shards](TaskContext &ctx) -> Task<void> {
            for (int f = 0; f < cfg.frames; ++f) {
                auto frame = co_await ctx.receive();
                co_await ctx.compute(cfg.warpComputePerFrame);
                std::vector<std::uint8_t> features(cfg.featureBytes,
                                                   0);
                features[0] = kindFeature;
                // Propagate the camera timestamp end to end.
                putTick(features, 1, getTick(frame.view(), 1));
                co_await ctx.send(
                    shards[f % shards.size()], std::move(features),
                    nectarine::Delivery::reliable);
            }
        });

    // --- The camera: frames at video rate.
    api.createTask(
        cameraSite, "camera" + run,
        [this, warp](TaskContext &ctx) -> Task<void> {
            for (int f = 0; f < cfg.frames; ++f) {
                co_await ctx.sleepFor(cfg.frameInterval);
                std::vector<std::uint8_t> frame(cfg.frameBytes, 0);
                frame[0] = kindFeature;
                putTick(frame, 1, ctx.now());
                co_await ctx.send(warp, std::move(frame),
                                  nectarine::Delivery::reliable);
            }
        });

    // --- Query clients against the distributed spatial database.
    for (std::size_t c = 0; c < clientSites.size(); ++c) {
        api.createTask(
            clientSites[c], "vq" + run + "_" + std::to_string(c),
            [this, shards, c](TaskContext &ctx) -> Task<void> {
                sim::Random rng(cfg.seed + c);
                for (int q = 0; q < cfg.queriesPerClient; ++q) {
                    co_await ctx.sleepFor(static_cast<Tick>(
                        rng.exponential(200.0 * us)));
                    std::vector<std::uint8_t> query(cfg.queryBytes,
                                                    0);
                    query[0] = kindQuery;
                    Tick t0 = ctx.now();
                    auto shard = shards[rng.below(
                        static_cast<std::uint32_t>(shards.size()))];
                    auto answer =
                        co_await ctx.call(shard, std::move(query));
                    if (answer) {
                        _queryLat.record(
                            static_cast<double>(ctx.now() - t0));
                    }
                }
                ++clientsDone;
            });
    }
}

} // namespace nectar::workload
