/**
 * @file
 * Scientific halo-exchange workload (Section 7).
 *
 * "Large-scale scientific applications that execute well on
 * loosely-coupled arrays of processors are also easily ported to
 * Nectar.  Powerful, general-purpose Nectar nodes can provide
 * sufficient processing power ... and the Nectar-net has the
 * bandwidth to meet their communication needs."
 *
 * Model: a logical grid of tasks; each iteration every task sends a
 * halo to its 4-neighbourhood, waits for all neighbour halos of that
 * iteration, then computes.  Measures per-iteration time.
 */

#pragma once

#include <vector>

#include "nectarine/nectarine.hh"
#include "sim/stats.hh"

namespace nectar::workload {

using sim::Tick;
using namespace sim::ticks;

/** Parameters for HaloExchange. */
struct HaloConfig
{
    int rows = 2;
    int cols = 2;
    int iterations = 10;
    std::uint32_t haloBytes = 2048;
    Tick computePerIteration = 500 * us;
};

/** Iterative nearest-neighbour exchange on a logical 2-D grid. */
class HaloExchange
{
  public:
    using Config = HaloConfig;

    /**
     * @param api Runtime.
     * @param sites rows*cols site indices, row-major.
     */
    HaloExchange(nectarine::Nectarine &api,
                 std::vector<std::size_t> sites,
                 const HaloConfig &config = {});

    /** Grid cells that completed all iterations. */
    int completedCells() const { return *done; }

    /** Wall time of each completed iteration, across cells (ns). */
    const sim::Histogram &iterationTime() const { return _iterTime; }

    bool
    finished() const
    {
        return *done == cfg.rows * cfg.cols;
    }

  private:
    Config cfg;
    std::shared_ptr<int> done = std::make_shared<int>(0);
    sim::Histogram _iterTime;
};

} // namespace nectar::workload
