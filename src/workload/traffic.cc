#include "traffic.hh"

#include <cstdint>

namespace nectar::workload {

using nectarine::TaskContext;
using sim::Task;

namespace {

int trafficCounter = 0;

/** splitmix64, to whiten adjacent per-site seeds apart. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

void
putTick(std::vector<std::uint8_t> &v, Tick t)
{
    for (int i = 0; i < 8; ++i)
        v[i] = static_cast<std::uint8_t>(
            static_cast<std::uint64_t>(t) >> (56 - 8 * i));
}

Tick
getTick(const sim::PacketView &v)
{
    std::uint64_t t = 0;
    for (int i = 0; i < 8; ++i)
        t = (t << 8) | v[i];
    return static_cast<Tick>(t);
}

} // namespace

RandomTraffic::RandomTraffic(nectarine::Nectarine &api,
                             const Config &config)
    : cfg(config)
{
    const std::size_t n = api.system().siteCount();
    const std::string run = std::to_string(trafficCounter++);
    auto senders_left = std::make_shared<int>(static_cast<int>(n));

    receivers.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        receivers.push_back(api.createTask(
            i, "trx" + run + "_" + std::to_string(i),
            [this](TaskContext &ctx) -> Task<void> {
                for (;;) {
                    auto m = co_await ctx.receive();
                    if (m.size() < 8)
                        break; // poison: traffic over
                    ++_delivered;
                    _latency.record(static_cast<double>(
                        ctx.now() - getTick(m.view())));
                }
            }));
    }

    for (std::size_t i = 0; i < n; ++i) {
        api.createTask(
            i, "ttx" + run + "_" + std::to_string(i),
            [this, i, n, senders_left](TaskContext &ctx) -> Task<void> {
                // An independent stream per site: seed+i alone leaves
                // PCG states a fixed stride apart (gap draws
                // correlate across sites); whitening the seed and
                // picking a distinct stream decorrelates them.
                sim::Random rng(mix64(cfg.seed ^ (i + 1)),
                                0x74726166ull + 2 * i + 1);
                for (int k = 0; k < cfg.messagesPerSite; ++k) {
                    co_await ctx.sleepFor(static_cast<Tick>(
                        rng.exponential(static_cast<double>(
                            cfg.meanGap))));
                    std::size_t dst =
                        (i + 1 + rng.below(static_cast<std::uint32_t>(
                             n - 1))) % n;
                    std::vector<std::uint8_t> msg(
                        std::max<std::uint32_t>(cfg.messageBytes, 8),
                        0);
                    putTick(msg, ctx.now());
                    ++_sent;
                    co_await ctx.send(receivers[dst], std::move(msg),
                                      nectarine::Delivery::datagram);
                }
                if (--*senders_left == 0) {
                    // Let stragglers drain, then poison the receivers.
                    co_await ctx.sleepFor(5 * ms);
                    for (auto rx : receivers) {
                        std::vector<std::uint8_t> poison(1, 0);
                        co_await ctx.send(rx, std::move(poison),
                                          nectarine::Delivery::reliable);
                    }
                }
            });
    }
}

} // namespace nectar::workload
