#include "production.hh"

#include "sim/logging.hh"

namespace nectar::workload {

using nectarine::TaskContext;
using nectarine::TaskId;
using sim::Task;

namespace {

int productionCounter = 0;

void
putTick(std::vector<std::uint8_t> &v, std::size_t off, Tick t)
{
    for (int i = 0; i < 8; ++i)
        v[off + i] = static_cast<std::uint8_t>(
            static_cast<std::uint64_t>(t) >> (56 - 8 * i));
}

Tick
getTick(const sim::PacketView &v, std::size_t off)
{
    std::uint64_t t = 0;
    for (int i = 0; i < 8; ++i)
        t = (t << 8) | v[off + i];
    return static_cast<Tick>(t);
}

} // namespace

ProductionWorkload::ProductionWorkload(
    nectarine::Nectarine &api, std::vector<std::size_t> workerSites,
    const Config &config)
    : cfg(config)
{
    if (workerSites.empty())
        sim::fatal("ProductionWorkload: need at least one worker");

    const std::string run = std::to_string(productionCounter++);
    auto workers = std::make_shared<std::vector<TaskId>>();

    for (std::size_t w = 0; w < workerSites.size(); ++w) {
        TaskId id = api.createTask(
            workerSites[w], "rete" + run + "_" + std::to_string(w),
            [this, w, workers](TaskContext &ctx) -> Task<void> {
                sim::Random rng(cfg.seed * 97 + w);
                for (;;) {
                    auto token = co_await ctx.receive();
                    if (token.size() < 8)
                        continue;
                    if (*processed >= cfg.maxTokens)
                        continue; // drain silently after cutoff
                    _tokenLat.record(static_cast<double>(
                        ctx.now() - getTick(token.view(), 0)));
                    // Match: evaluate this partition of the RETE
                    // network against the token.
                    co_await ctx.compute(cfg.matchCompute);
                    ++*processed;
                    _lastMatch = ctx.now();
                    if (*processed >= cfg.maxTokens)
                        continue;
                    // Propagate follow-on tokens through the
                    // distributed task queue.
                    if (rng.chance(cfg.fanoutProbability)) {
                        for (int f = 0; f < cfg.fanout; ++f) {
                            auto dst = (*workers)[rng.below(
                                static_cast<std::uint32_t>(
                                    workers->size()))];
                            std::vector<std::uint8_t> next(
                                std::max<std::uint32_t>(
                                    cfg.tokenBytes, 8),
                                0);
                            putTick(next, 0, ctx.now());
                            co_await ctx.send(
                                dst, std::move(next),
                                nectarine::Delivery::reliable);
                        }
                    }
                }
            });
        workers->push_back(id);
    }

    // Root: seed the initial working memory changes.
    api.createTask(
        workerSites[0], "root" + run,
        [this, workers](TaskContext &ctx) -> Task<void> {
            sim::Random rng(cfg.seed);
            for (int t = 0; t < cfg.seedTokens; ++t) {
                auto dst = (*workers)[rng.below(
                    static_cast<std::uint32_t>(workers->size()))];
                std::vector<std::uint8_t> token(
                    std::max<std::uint32_t>(cfg.tokenBytes, 8), 0);
                putTick(token, 0, ctx.now());
                co_await ctx.send(dst, std::move(token),
                                  nectarine::Delivery::reliable);
            }
        });
}

} // namespace nectar::workload
