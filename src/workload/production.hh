/**
 * @file
 * The parallel production system workload (Section 7).
 *
 * "We are implementing a parallel production system as an example of
 * an application that requires run-time load balancing.  Matching is
 * performed in parallel using a distributed RETE network, and tokens
 * that propagate through the network are stored in a distributed task
 * queue.  The low latency communication of Nectar provides good
 * support for the fine-grained parallelism required by this
 * application."
 *
 * Model: worker tasks hold partitions of the RETE network.  A root
 * task seeds tokens; each match consumes a token (costed compute) and
 * probabilistically emits follow-on tokens to random workers (the
 * distributed task queue).  The measured quantities are token
 * throughput and per-hop token latency — both dominated by message
 * latency, which is the paper's point.
 */

#pragma once

#include <vector>

#include "nectarine/nectarine.hh"
#include "sim/random.hh"
#include "sim/stats.hh"

namespace nectar::workload {

using sim::Tick;
using namespace sim::ticks;

/** Parameters for ProductionWorkload. */
struct ProductionConfig
{
    int seedTokens = 32;       ///< Tokens injected by the root.
    int maxTokens = 2000;      ///< Stop after this many matches.
    Tick matchCompute = 30 * us; ///< Work per token match.
    double fanoutProbability = 0.45; ///< P(emit a new token).
    int fanout = 2;            ///< Tokens emitted on a match.
    std::uint32_t tokenBytes = 64;
    std::uint64_t seed = 11;
};

/** A distributed RETE-style token-passing computation. */
class ProductionWorkload
{
  public:
    using Config = ProductionConfig;

    /**
     * @param api Runtime.
     * @param workerSites One worker task per entry.
     */
    ProductionWorkload(nectarine::Nectarine &api,
                       std::vector<std::size_t> workerSites,
                       const ProductionConfig &config = {});

    /** Tokens matched across all workers. */
    int tokensProcessed() const { return *processed; }

    /** Per-hop token latency (send to match start), ns. */
    const sim::Histogram &tokenLatency() const { return _tokenLat; }

    /** Simulated time of the last match. */
    Tick lastMatchAt() const { return _lastMatch; }

    /** Tokens matched per millisecond of simulated time. */
    double
    tokensPerMs() const
    {
        if (_lastMatch <= 0)
            return 0.0;
        return static_cast<double>(*processed) /
               (static_cast<double>(_lastMatch) / ms);
    }

  private:
    Config cfg;
    std::shared_ptr<int> processed = std::make_shared<int>(0);
    sim::Histogram _tokenLat;
    Tick _lastMatch = 0;
};

} // namespace nectar::workload
