#include "allreduce.hh"

#include <algorithm>
#include <string>

#include "sim/logging.hh"

namespace nectar::workload {

using nectarine::TaskContext;
using nectarine::TaskId;
using sim::Task;

namespace {

int allreduceCounter = 0;

std::uint64_t
fnv1a(const std::vector<std::uint8_t> &bytes)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (auto b : bytes) {
        h ^= b;
        h *= 0x100000001b3ull;
    }
    return h;
}

std::uint32_t
laneAt(const std::vector<std::uint8_t> &v, std::size_t at)
{
    return (static_cast<std::uint32_t>(v[at]) << 24) |
           (static_cast<std::uint32_t>(v[at + 1]) << 16) |
           (static_cast<std::uint32_t>(v[at + 2]) << 8) |
           static_cast<std::uint32_t>(v[at + 3]);
}

void
laneSet(std::vector<std::uint8_t> &v, std::size_t at, std::uint32_t x)
{
    v[at] = static_cast<std::uint8_t>(x >> 24);
    v[at + 1] = static_cast<std::uint8_t>(x >> 16);
    v[at + 2] = static_cast<std::uint8_t>(x >> 8);
    v[at + 3] = static_cast<std::uint8_t>(x);
}

} // namespace

std::vector<std::uint8_t>
AllreduceWorkload::memberData(const Config &cfg, int r, int t)
{
    std::vector<std::uint8_t> data(cfg.bytes);
    for (std::size_t j = 0; j < data.size(); ++j)
        data[j] = static_cast<std::uint8_t>(
            cfg.seed * 131u + static_cast<std::uint32_t>(r) * 31u +
            static_cast<std::uint32_t>(j) * 7u +
            static_cast<std::uint32_t>(t) * 13u);
    return data;
}

std::vector<std::uint8_t>
AllreduceWorkload::expectedData(const Config &cfg, int t)
{
    auto acc = memberData(cfg, 0, t);
    for (int r = 1; r < cfg.members; ++r) {
        auto in = memberData(cfg, r, t);
        for (std::size_t at = 0; at + 4 <= acc.size(); at += 4) {
            std::uint32_t a = laneAt(acc, at), b = laneAt(in, at);
            std::uint32_t v = 0;
            switch (cfg.op) {
            case collective::ReduceOp::sum: v = a + b; break;
            case collective::ReduceOp::min: v = std::min(a, b); break;
            case collective::ReduceOp::max: v = std::max(a, b); break;
            }
            laneSet(acc, at, v);
        }
    }
    return acc;
}

AllreduceWorkload::AllreduceWorkload(
    nectarine::Nectarine &api, collective::GroupDirectory &groups,
    std::vector<std::size_t> sites, const Config &config)
    : cfg(config)
{
    if (sites.size() != static_cast<std::size_t>(cfg.members))
        sim::fatal("AllreduceWorkload: one site per member required");
    if (cfg.bytes == 0 || cfg.bytes % 4 != 0)
        sim::fatal("AllreduceWorkload: bytes must be a positive "
                   "multiple of 4 (32-bit lanes)");

    const std::string run = std::to_string(allreduceCounter++);
    auto groupsp = &groups;
    _slots->resize(static_cast<std::size_t>(cfg.members));
    std::vector<TaskId> ids;
    for (int r = 0; r < cfg.members; ++r) {
        TaskId id = api.createTask(
            sites[static_cast<std::size_t>(r)],
            "allreduce" + run + "_" + std::to_string(r),
            [this, groupsp, r](TaskContext &ctx) -> Task<void> {
                collective::Communicator comm(ctx, *groupsp, *gid,
                                              cfg.comm);
                // Each member writes only its own slot: no member's
                // progress ever touches another cluster's memory.
                MemberResult &slot =
                    (*_slots)[static_cast<std::size_t>(r)];
                std::uint64_t fp = 0;
                for (int t = 0; t < cfg.rounds; ++t) {
                    auto data = memberData(cfg, comm.rank(), t);
                    auto res = co_await comm.allreduce(cfg.op, data);
                    slot.epoch = std::max(slot.epoch, res.epoch);
                    if (!res.ok) {
                        slot.error = true;
                        co_return;
                    }
                    if (data != expectedData(cfg, t)) {
                        slot.wrong = true;
                        co_return;
                    }
                    fp ^= fnv1a(data) + 0x9e3779b97f4a7c15ull +
                          (fp << 6) + (fp >> 2);
                }
                slot.ok = true;
                slot.finish = ctx.now();
                // Order-independent: each member's term depends only
                // on its own rank, results and finish time.
                slot.fp =
                    (fp ^ static_cast<std::uint64_t>(ctx.now())) *
                    (static_cast<std::uint64_t>(comm.rank()) * 2u +
                     1u);
                co_return;
            });
        ids.push_back(id);
    }
    *gid = groups.create("allreduce" + run, ids);
}

AllreduceReport
AllreduceWorkload::report() const
{
    AllreduceReport r;
    for (const MemberResult &m : *_slots) {
        if (m.ok)
            ++r.okMembers;
        if (m.error)
            ++r.errorMembers;
        if (m.wrong)
            ++r.wrongMembers;
        r.fingerprint += m.fp;
        r.lastFinish = std::max(r.lastFinish, m.finish);
        r.finalEpoch = std::max(r.finalEpoch, m.epoch);
    }
    return r;
}

} // namespace nectar::workload
