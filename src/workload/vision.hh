/**
 * @file
 * The vision application workload (Section 7).
 *
 * "One of the first Nectar applications is in the area of vision.
 * The application uses a Warp machine for low-level vision analysis
 * and Sun workstations for manipulating image features that are
 * stored in a distributed spatial database.  It requires both high
 * bandwidth for image transfer and low latency for communication
 * between nodes in the database.  This application has a static
 * computational model."
 *
 * Model: a camera task streams image frames to a Warp task (bulk,
 * reliable); the Warp extracts features (costed compute) and scatters
 * feature records across database shard tasks; client tasks issue
 * spatial queries against the shards (request-response).
 */

#pragma once

#include <vector>

#include "nectarine/nectarine.hh"
#include "sim/stats.hh"

namespace nectar::workload {

using sim::Tick;
using namespace sim::ticks;

/** Parameters for VisionWorkload. */
struct VisionConfig
{
    int frames = 8;
    std::uint32_t frameBytes = 128 * 1024; ///< One image frame.
    Tick frameInterval = 4 * ms;           ///< Camera rate.
    /** Warp compute per frame (systolic low-level vision). */
    Tick warpComputePerFrame = 2 * ms;
    std::uint32_t featureBytes = 4 * 1024; ///< Per-frame features.
    int queriesPerClient = 20;
    std::uint32_t queryBytes = 64;
    std::uint32_t answerBytes = 256;
    /** Database lookup compute per query. */
    Tick dbComputePerQuery = 50 * us;
    std::uint64_t seed = 7;
};

/** The static task placement and parameters of the vision pipeline. */
class VisionWorkload
{
  public:
    using Config = VisionConfig;

    /**
     * Lay out the pipeline on a system.
     *
     * @param api Runtime.
     * @param cameraSite Site of the frame source.
     * @param warpSite Site of the Warp machine's CAB.
     * @param dbSites Database shard sites.
     * @param clientSites Query client sites.
     */
    VisionWorkload(nectarine::Nectarine &api, std::size_t cameraSite,
                   std::size_t warpSite,
                   std::vector<std::size_t> dbSites,
                   std::vector<std::size_t> clientSites,
                   const VisionConfig &config = {});

    /** Frames fully processed by the Warp task. */
    int framesProcessed() const { return _frames; }

    /** End-to-end frame latency: camera send to features stored. */
    const sim::Histogram &frameLatency() const { return _frameLat; }

    /** Query round-trip latency at the clients (ns). */
    const sim::Histogram &queryLatency() const { return _queryLat; }

    /** Queries answered across all shards. */
    int queriesAnswered() const { return _queries; }

    bool
    finished() const
    {
        return _frames >= cfg.frames && clientsDone == clientCount;
    }

  private:
    Config cfg;
    int _frames = 0;
    int _queries = 0;
    int clientsDone = 0;
    int clientCount = 0;
    sim::Histogram _frameLat;
    sim::Histogram _queryLat;
};

} // namespace nectar::workload
