#include "halo.hh"

#include <map>

#include "sim/logging.hh"

namespace nectar::workload {

using nectarine::TaskContext;
using nectarine::TaskId;
using sim::Task;

namespace {

int haloCounter = 0;

} // namespace

HaloExchange::HaloExchange(nectarine::Nectarine &api,
                           std::vector<std::size_t> sites,
                           const Config &config)
    : cfg(config)
{
    if (sites.size() !=
        static_cast<std::size_t>(cfg.rows) * cfg.cols)
        sim::fatal("HaloExchange: sites must cover the grid");

    const std::string run = std::to_string(haloCounter++);
    auto cells = std::make_shared<std::vector<TaskId>>();

    for (int r = 0; r < cfg.rows; ++r) {
        for (int c = 0; c < cfg.cols; ++c) {
            int cell = r * cfg.cols + c;
            TaskId id = api.createTask(
                sites[cell],
                "halo" + run + "_" + std::to_string(cell),
                [this, r, c, cells](TaskContext &ctx) -> Task<void> {
                    // 4-neighbourhood with boundary clipping.
                    std::vector<int> neighbors;
                    if (r > 0)
                        neighbors.push_back((r - 1) * cfg.cols + c);
                    if (r + 1 < cfg.rows)
                        neighbors.push_back((r + 1) * cfg.cols + c);
                    if (c > 0)
                        neighbors.push_back(r * cfg.cols + c - 1);
                    if (c + 1 < cfg.cols)
                        neighbors.push_back(r * cfg.cols + c + 1);

                    std::map<std::uint32_t, int> arrived;
                    for (int it = 0; it < cfg.iterations; ++it) {
                        Tick t0 = ctx.now();
                        for (int n : neighbors) {
                            std::vector<std::uint8_t> halo(
                                std::max<std::uint32_t>(
                                    cfg.haloBytes, 4),
                                0);
                            halo[0] = static_cast<std::uint8_t>(
                                it >> 8);
                            halo[1] = static_cast<std::uint8_t>(it);
                            co_await ctx.send(
                                (*cells)[n], std::move(halo),
                                nectarine::Delivery::reliable);
                        }
                        // Wait for this iteration's halos; a fast
                        // neighbour may already be one iteration
                        // ahead, so credit arrivals per iteration.
                        auto want =
                            static_cast<std::uint32_t>(it);
                        while (arrived[want] <
                               static_cast<int>(neighbors.size())) {
                            auto m = co_await ctx.receive();
                            std::uint32_t msg_it =
                                (static_cast<std::uint32_t>(
                                     m.view()[0])
                                 << 8) |
                                m.view()[1];
                            ++arrived[msg_it];
                        }
                        arrived.erase(want);
                        co_await ctx.compute(
                            cfg.computePerIteration);
                        _iterTime.record(
                            static_cast<double>(ctx.now() - t0));
                    }
                    ++*done;
                });
            cells->push_back(id);
        }
    }
}

} // namespace nectar::workload
