/**
 * @file
 * Allreduce workload: data-parallel reduction over a Nectar group.
 *
 * The collective analogue of the halo exchange: every member holds a
 * vector, and each round the group allreduces it (sum/min/max over
 * 32-bit lanes) through the collectives subsystem — HUB hardware
 * multicast where the fabric allows, unicast fan-out otherwise.  The
 * workload verifies every member's result against the host-computed
 * reduction and folds results and finish times into an
 * order-independent fingerprint, so two runs of the same
 * configuration can be compared bit-for-bit (determinism) and the
 * hardware and unicast paths can be compared value-for-value.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "collectives/communicator.hh"
#include "collectives/group.hh"
#include "nectarine/nectarine.hh"
#include "sim/stats.hh"

namespace nectar::workload {

/** Parameters for AllreduceWorkload. */
struct AllreduceConfig
{
    int members = 4;             ///< Group size (one task per site).
    std::uint32_t bytes = 1024;  ///< Vector size (multiple of 4).
    int rounds = 1;              ///< Allreduce operations per member.
    collective::ReduceOp op = collective::ReduceOp::sum;
    std::uint32_t seed = 1;      ///< Deterministic data seed.
    collective::CommunicatorConfig comm; ///< Path, timeout, cutoff.
};

/** Aggregate outcome, valid after the event queue has run. */
struct AllreduceReport
{
    int okMembers = 0;    ///< Members whose every round succeeded.
    int errorMembers = 0; ///< Members that saw a collective error.
    int wrongMembers = 0; ///< Members with a mismatched result.
    /** Order-independent digest of every member's results and finish
     *  times; identical across reruns and across fabric paths. */
    std::uint64_t fingerprint = 0;
    sim::Tick lastFinish = 0;    ///< When the slowest member finished.
    std::uint32_t finalEpoch = 0; ///< Highest epoch seen in results.
};

/**
 * Runs @c members tasks, one per site index given, each allreducing
 * @c rounds deterministic vectors through one shared group.
 */
class AllreduceWorkload
{
  public:
    using Config = AllreduceConfig;

    AllreduceWorkload(nectarine::Nectarine &api,
                      collective::GroupDirectory &groups,
                      std::vector<std::size_t> sites,
                      const Config &config = {});

    /** Aggregated from the per-member slots (valid after the run). */
    AllreduceReport report() const;
    collective::GroupId group() const { return *gid; }

    /** The member vector rank @p r contributes in round @p t. */
    static std::vector<std::uint8_t>
    memberData(const Config &cfg, int r, int t);

    /** Host-computed reduction of all members' round-@p t vectors. */
    static std::vector<std::uint8_t>
    expectedData(const Config &cfg, int t);

  private:
    /**
     * One member task's outcome.  Each task writes only its own slot
     * (members run on different clusters under the parallel engine);
     * report() folds the slots after the run, when the simulation is
     * single-threaded again.
     */
    struct MemberResult
    {
        bool ok = false;
        bool error = false;
        bool wrong = false;
        std::uint64_t fp = 0;
        sim::Tick finish = 0;
        std::uint32_t epoch = 0;
    };

    Config cfg;
    std::shared_ptr<collective::GroupId> gid =
        std::make_shared<collective::GroupId>(0);
    std::shared_ptr<std::vector<MemberResult>> _slots =
        std::make_shared<std::vector<MemberResult>>();
};

} // namespace nectar::workload
