/**
 * @file
 * Random background traffic for contention experiments (E13).
 *
 * Section 3.1: "the use of crossbar switches substantially reduces
 * network contention" — this generator drives many sites with
 * Poisson datagram traffic to uniformly random destinations and
 * records delivery rate and latency, on Nectar or (via the node
 * stack) on the LAN baseline.
 */

#pragma once

#include <vector>

#include "nectarine/nectarine.hh"
#include "sim/random.hh"
#include "sim/stats.hh"

namespace nectar::workload {

using sim::Tick;
using namespace sim::ticks;

/** Parameters for RandomTraffic. */
struct RandomTrafficConfig
{
    /** Mean inter-message gap per site (Poisson process). */
    Tick meanGap = 200 * us;
    std::uint32_t messageBytes = 512;
    /** Messages each site sends before stopping. */
    int messagesPerSite = 50;
    std::uint64_t seed = 1;
};

/**
 * Uniform random datagram traffic among all sites of a system.
 */
class RandomTraffic
{
  public:
    using Config = RandomTrafficConfig;

    /**
     * Creates one sender and one receiver task per site.
     * @param api Runtime over the system under test.
     */
    RandomTraffic(nectarine::Nectarine &api, const RandomTrafficConfig &config = {});

    /** Messages handed to the transport. */
    std::uint64_t sent() const { return _sent; }

    /** Messages that reached a destination inbox. */
    std::uint64_t delivered() const { return _delivered; }

    double
    deliveryRate() const
    {
        return _sent ? static_cast<double>(_delivered) /
                           static_cast<double>(_sent)
                     : 0.0;
    }

    /** One-way delivery latency samples (ns). */
    const sim::Histogram &latency() const { return _latency; }

  private:
    Config cfg;
    std::uint64_t _sent = 0;
    std::uint64_t _delivered = 0;
    sim::Histogram _latency;
    std::vector<nectarine::TaskId> receivers;
};

} // namespace nectar::workload
