#include "probes.hh"

namespace nectar::workload {

using nectarine::TaskContext;
using sim::Task;

namespace {

int probeCounter = 0;

} // namespace

PingPong::PingPong(nectarine::Nectarine &api, std::size_t siteA,
                   std::size_t siteB, const Config &config)
    : cfg(config)
{
    std::string suffix =
        cfg.label + "_" + std::to_string(probeCounter++);

    nectarine::TaskId echo = api.createTask(
        siteB, "echo_" + suffix,
        [this](TaskContext &ctx) -> Task<void> {
            for (int i = 0; i < cfg.iterations; ++i) {
                auto m = co_await ctx.receive();
                // Echo the payload straight back to the initiator.
                nectarine::TaskId back{
                    static_cast<transport::CabAddress>(
                        (m.view()[0] << 8) | m.view()[1]),
                    static_cast<std::uint16_t>(
                        (m.view()[2] << 8) | m.view()[3])};
                co_await ctx.send(back, m.takeView(),
                                  cfg.delivery);
            }
        });

    api.createTask(
        siteA, "ping_" + suffix,
        [this, echo](TaskContext &ctx) -> Task<void> {
            for (int i = 0; i < cfg.iterations; ++i) {
                std::vector<std::uint8_t> msg(
                    std::max<std::uint32_t>(cfg.messageBytes, 4), 0);
                msg[0] = static_cast<std::uint8_t>(ctx.id().cab >> 8);
                msg[1] = static_cast<std::uint8_t>(ctx.id().cab);
                msg[2] = static_cast<std::uint8_t>(ctx.id().index >> 8);
                msg[3] = static_cast<std::uint8_t>(ctx.id().index);
                Tick t0 = ctx.now();
                co_await ctx.send(echo, std::move(msg), cfg.delivery);
                co_await ctx.receive();
                _rtt.record(static_cast<double>(ctx.now() - t0));
            }
            _finished = true;
        });
}

StreamMeter::StreamMeter(nectarine::Nectarine &api, std::size_t siteA,
                         std::size_t siteB, const Config &config)
    : cfg(config)
{
    std::string suffix =
        cfg.label + "_" + std::to_string(probeCounter++);

    std::uint64_t messages =
        (cfg.totalBytes + cfg.messageBytes - 1) / cfg.messageBytes;

    nectarine::TaskId sink = api.createTask(
        siteB, "sink_" + suffix,
        [this, messages](TaskContext &ctx) -> Task<void> {
            for (std::uint64_t i = 0; i < messages; ++i) {
                auto m = co_await ctx.receive();
                delivered += m.size();
            }
            _end = ctx.now();
            _finished = true;
        });

    api.createTask(
        siteA, "src_" + suffix,
        [this, sink, messages](TaskContext &ctx) -> Task<void> {
            _start = ctx.now();
            std::uint64_t remaining = cfg.totalBytes;
            for (std::uint64_t i = 0; i < messages; ++i) {
                auto len = static_cast<std::uint32_t>(
                    std::min<std::uint64_t>(cfg.messageBytes,
                                            remaining));
                remaining -= len;
                std::vector<std::uint8_t> msg(len,
                                              std::uint8_t(i));
                co_await ctx.send(sink, std::move(msg),
                                  nectarine::Delivery::reliable);
            }
        });
}

} // namespace nectar::workload
