/**
 * @file
 * Measurement probes: ping-pong latency and bulk-stream throughput.
 *
 * These drive the latency and bandwidth experiments (E3, E4, E6, E10,
 * E11 in DESIGN.md): the paper's communication goals are stated as
 * process-to-process latencies (Section 2.3) and link/aggregate
 * bandwidths (Section 3.1).
 */

#pragma once

#include <string>

#include "nectarine/nectarine.hh"
#include "sim/stats.hh"

namespace nectar::workload {

using sim::Tick;

/** Parameters for PingPong. */
struct PingPongConfig
{
    int iterations = 100;
    std::uint32_t messageBytes = 64;
    nectarine::Delivery delivery = nectarine::Delivery::datagram;
    /** Extra label so several probes can coexist. */
    std::string label = "pp";
};

/**
 * Round-trip latency probe between two tasks.
 *
 * Construct, run the event queue, then read the statistics.
 */
class PingPong
{
  public:
    using Config = PingPongConfig;

    /**
     * @param api Nectarine runtime.
     * @param siteA Initiator site index.
     * @param siteB Responder site index.
     */
    PingPong(nectarine::Nectarine &api, std::size_t siteA,
             std::size_t siteB, const PingPongConfig &config = {});

    /** Round-trip times (ns), one sample per iteration. */
    const sim::Histogram &rtt() const { return _rtt; }

    double
    meanRttUs() const
    {
        return _rtt.mean() / 1000.0;
    }

    /** Estimated one-way latency (half RTT), in microseconds. */
    double
    meanOneWayUs() const
    {
        return meanRttUs() / 2.0;
    }

    bool finished() const { return _finished; }

  private:
    Config cfg;
    sim::Histogram _rtt;
    bool _finished = false;
};

/** Parameters for StreamMeter. */
struct StreamMeterConfig
{
    std::uint64_t totalBytes = 1 << 20;
    std::uint32_t messageBytes = 32 * 1024;
    std::string label = "stream";
};

/**
 * Bulk throughput probe: one reliable stream of messages from A to B.
 */
class StreamMeter
{
  public:
    using Config = StreamMeterConfig;

    StreamMeter(nectarine::Nectarine &api, std::size_t siteA,
                std::size_t siteB,
                const StreamMeterConfig &config = {});

    /** Simulated time from first send to last delivery. */
    Tick elapsed() const { return _end - _start; }

    /** Goodput in megabytes per second of simulated time. */
    double
    megabytesPerSecond() const
    {
        if (_end <= _start)
            return 0.0;
        return static_cast<double>(delivered) * 1000.0 /
               static_cast<double>(_end - _start);
    }

    std::uint64_t bytesDelivered() const { return delivered; }
    bool finished() const { return _finished; }

  private:
    Config cfg;
    Tick _start = 0;
    Tick _end = 0;
    std::uint64_t delivered = 0;
    bool _finished = false;
};

} // namespace nectar::workload
