#include "kernel.hh"

#include "sim/logging.hh"

namespace nectar::cabos {

Kernel::Kernel(cab::Cab &board)
    : sim::Component(board.eventq(), board.name() + ".kernel"),
      _board(board), alloc(BufferAllocator::forDataRam())
{
}

sim::Task<void>
Kernel::threadRunner(std::string name, sim::Task<void> body)
{
    (void)name;
    co_await std::move(body);
    --_alive;
}

void
Kernel::spawnThread(const std::string &name, sim::Task<void> body)
{
    _spawned.add();
    ++_alive;
    // The thread body starts from the scheduler (an event), not from
    // the caller's stack: threads created together all exist before
    // any of them runs, as with a real non-preemptive scheduler.
    auto task = std::make_shared<sim::Task<void>>(std::move(body));
    eventq().scheduleIn(sim::ticks::immediate, [this, name, task] {
        sim::spawn(threadRunner(name, std::move(*task)));
    }, sim::EventPriority::software);
}

sim::Task<void>
Kernel::sleepFor(sim::Tick d)
{
    // Arm a hardware timer (low overhead, Section 5.1)...
    _board.cpu().charge(costs().timerOp);
    co_await sim::Delay{eventq(), d};
    // ...and pay the context switch when the thread is rescheduled.
    noteThreadSwitch();
    co_await _board.cpu().compute(costs().threadSwitch);
}

Mailbox &
Kernel::createMailbox(const std::string &name,
                      std::uint32_t capacityBytes, MailboxId id)
{
    if (id == 0) {
        while (boxes.count(nextMailboxId) || nextMailboxId == 0)
            ++nextMailboxId;
        id = nextMailboxId++;
    }
    if (boxes.count(id))
        sim::fatal(this->name() + ": mailbox id already in use: " +
                   std::to_string(id));
    auto box = std::make_unique<Mailbox>(*this, id, name, capacityBytes);
    Mailbox &ref = *box;
    boxes.emplace(id, std::move(box));
    return ref;
}

Mailbox *
Kernel::mailbox(MailboxId id)
{
    auto it = boxes.find(id);
    return it == boxes.end() ? nullptr : it->second.get();
}

bool
Kernel::destroyMailbox(MailboxId id)
{
    return boxes.erase(id) > 0;
}

cab::Domain
Kernel::allocateDomain()
{
    // Domain 0 is the kernel, domain 31 is reserved for VME accesses.
    for (int d = 1; d < cab::vmeDomain; ++d) {
        if (!(domainBitmap & (1u << d))) {
            domainBitmap |= (1u << d);
            return d;
        }
    }
    return -1;
}

void
Kernel::freeDomain(cab::Domain d)
{
    if (d <= 0 || d >= cab::vmeDomain)
        sim::panic(name() + ": freeing reserved or invalid domain");
    domainBitmap &= ~(1u << d);
    _board.memory().protection().clearDomain(d);
}

} // namespace nectar::cabos
