#include "allocator.hh"

#include "sim/logging.hh"

namespace nectar::cabos {

BufferAllocator::BufferAllocator(std::uint32_t base, std::uint32_t size)
    : base(base), size(size)
{
    if (size == 0)
        sim::fatal("BufferAllocator: zero-sized arena");
    free_[base] = size;
}

std::optional<std::uint32_t>
BufferAllocator::allocate(std::uint32_t len)
{
    if (len == 0) {
        fails.add();
        return std::nullopt;
    }
    for (auto it = free_.begin(); it != free_.end(); ++it) {
        if (it->second >= len) {
            std::uint32_t addr = it->first;
            std::uint32_t block = it->second;
            free_.erase(it);
            if (block > len)
                free_[addr + len] = block - len;
            live[addr] = len;
            used += len;
            allocs.add();
            return addr;
        }
    }
    fails.add();
    return std::nullopt;
}

bool
BufferAllocator::release(std::uint32_t addr)
{
    auto it = live.find(addr);
    if (it == live.end())
        return false;
    std::uint32_t len = it->second;
    live.erase(it);
    used -= len;

    // Insert and coalesce with neighbours.
    auto [pos, inserted] = free_.emplace(addr, len);
    if (!inserted)
        sim::panic("BufferAllocator: double free bookkeeping error");
    // Merge with next block.
    auto next = std::next(pos);
    if (next != free_.end() && pos->first + pos->second == next->first) {
        pos->second += next->second;
        free_.erase(next);
    }
    // Merge with previous block.
    if (pos != free_.begin()) {
        auto prev = std::prev(pos);
        if (prev->first + prev->second == pos->first) {
            prev->second += pos->second;
            free_.erase(pos);
        }
    }
    return true;
}

std::uint32_t
BufferAllocator::largestFreeBlock() const
{
    std::uint32_t best = 0;
    for (const auto &[addr, len] : free_)
        best = std::max(best, len);
    return best;
}

} // namespace nectar::cabos
