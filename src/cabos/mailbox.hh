/**
 * @file
 * CAB mailboxes: the kernel's message buffering abstraction.
 *
 * Section 6.1: "Another CAB function is to provide temporary buffer
 * space for messages in an efficient way.  This is achieved using
 * mailboxes in CAB memory.  In the common single-reader,
 * single-writer case, allocating and reclaiming space is simple
 * because mailboxes behave like FIFOs.  Mailboxes also support
 * multiple readers, multiple writers, and out-of-order reads.  These
 * access patterns occur, for example, when multiple servers operate
 * on different messages in the same mailbox."
 *
 * Message payload bytes are held in host vectors, but every message
 * is backed by a real allocation in the CAB's data RAM (made through
 * the kernel's BufferAllocator), so memory pressure, exhaustion and
 * reclamation behave as on the board.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "sim/buffer.hh"
#include "sim/component.hh"
#include "sim/coro.hh"
#include "sim/stats.hh"

namespace nectar::cabos {

class Kernel;

/** Identifies a mailbox within one CAB (transport address suffix). */
using MailboxId = std::uint16_t;

/**
 * A message held in (or destined for) a mailbox.
 *
 * The payload is a zero-copy PacketView; delivery into a mailbox
 * shares the buffers the packet arrived in.  bytes() materializes a
 * contiguous vector on demand (free when the view is one whole
 * buffer) for applications that need flat storage.
 *
 * Deliberately not an aggregate: GCC 12 miscompiles aggregate
 * temporaries inside co_await expressions (double destruction of the
 * temporary's non-trivial members), so Message provides explicit
 * constructors.
 */
struct Message
{
    Message() = default;

    explicit Message(sim::PacketView view, std::uint64_t tag = 0,
                     std::uint32_t buffer_addr = 0,
                     sim::Tick arrival = 0)
        : tag(tag), bufferAddr(buffer_addr), arrival(arrival),
          _view(std::move(view))
    {}

    explicit Message(std::vector<std::uint8_t> bytes,
                     std::uint64_t tag = 0,
                     std::uint32_t buffer_addr = 0,
                     sim::Tick arrival = 0)
        : tag(tag), bufferAddr(buffer_addr), arrival(arrival),
          _view(std::move(bytes))
    {}

    std::uint64_t tag = 0;     ///< Match key for out-of-order reads.
    std::uint32_t bufferAddr = 0; ///< Backing CAB data-RAM address.
    sim::Tick arrival = 0;     ///< When the message entered the box.

    /** Payload size in bytes. */
    std::size_t size() const { return _view.size(); }

    /** The payload as a zero-copy view. */
    const sim::PacketView &view() const { return _view; }

    /** Move the payload view out of the message. */
    sim::PacketView
    takeView()
    {
        cache.reset();
        return std::move(_view);
    }

    /**
     * The payload as contiguous bytes.  Zero-copy when the view is
     * one whole buffer; otherwise materialized once (a counted deep
     * copy) and cached.
     */
    const std::vector<std::uint8_t> &
    bytes() const
    {
        if (const auto *whole = _view.wholeBuffer())
            return *whole;
        if (!cache)
            cache = std::make_shared<const std::vector<std::uint8_t>>(
                _view.toVector());
        return *cache;
    }

    /** Copy the payload out as an owned vector (counted when the
     *  bytes must be materialized). */
    std::vector<std::uint8_t>
    takeBytes()
    {
        auto out = _view.toVector();
        _view = sim::PacketView{};
        cache.reset();
        return out;
    }

  private:
    sim::PacketView _view; ///< Payload.
    mutable std::shared_ptr<const std::vector<std::uint8_t>> cache;
};

/**
 * A mailbox: bounded buffer of messages with FIFO and out-of-order
 * (tag-matched) reads, multiple readers and writers.
 */
class Mailbox
{
  public:
    /**
     * Constructed via Kernel::createMailbox().
     *
     * @param kernel Owning kernel (allocator, CPU costs).
     * @param id Mailbox id on this CAB.
     * @param name Instance name.
     * @param capacityBytes Payload capacity; puts beyond it fail.
     */
    Mailbox(Kernel &kernel, MailboxId id, std::string name,
            std::uint32_t capacityBytes);

    ~Mailbox();

    Mailbox(const Mailbox &) = delete;
    Mailbox &operator=(const Mailbox &) = delete;

    MailboxId id() const { return _id; }
    const std::string &name() const { return _name; }

    /** Messages currently queued. */
    std::size_t count() const { return messages.size(); }

    /** Payload bytes currently buffered. */
    std::uint32_t bytesUsed() const { return _bytesUsed; }

    std::uint32_t capacity() const { return capacityBytes; }

    /** True if a message of @p len payload bytes would fit now. */
    bool
    canFit(std::uint32_t len) const
    {
        return _bytesUsed + len <= capacityBytes;
    }

    /**
     * Non-blocking put.  Allocates backing store in CAB data RAM.
     *
     * @return false if the mailbox is full or data RAM is exhausted
     *         (the caller — e.g. transport flow control — must hold
     *         the message or drop it).
     */
    bool tryPut(Message m);

    /**
     * Blocking (coroutine) put: waits until the message fits.
     */
    sim::Task<void> put(Message m);

    /** Non-blocking FIFO read. */
    std::optional<Message> tryGet();

    /** Non-blocking tag-matched (out-of-order) read. */
    std::optional<Message> tryGetTag(std::uint64_t tag);

    /**
     * Blocking FIFO read; resumption charges a thread switch on the
     * CAB CPU (the reader was blocked and is being rescheduled).
     */
    sim::Task<Message> get();

    /** Blocking tag-matched read (out-of-order consumer). */
    sim::Task<Message> getTag(std::uint64_t tag);

    /** Number of blocked readers. */
    std::size_t readersWaiting() const { return readers.size(); }

    /** Number of blocked writers. */
    std::size_t writersWaiting() const { return writers.size(); }

    std::uint64_t putsTotal() const { return _puts.value(); }
    std::uint64_t getsTotal() const { return _gets.value(); }
    std::uint64_t putFailures() const { return _putFails.value(); }

    /**
     * @name Internal interface used by the blocking awaiters.
     * Not for application use.
     */
    ///@{
    std::optional<Message>
    awaiterTake(const std::optional<std::uint64_t> &tag)
    {
        return takeMatching(tag);
    }

    void
    registerReader(std::optional<std::uint64_t> tag,
                   std::coroutine_handle<> h, bool *satisfied,
                   Message *slot)
    {
        readers.push_back(Reader{tag, h, satisfied, slot});
    }

    void registerWriter(std::coroutine_handle<> h)
    {
        writers.push_back(h);
    }
    ///@}

  private:
    struct Reader
    {
        std::optional<std::uint64_t> tag; ///< nullopt = FIFO reader.
        std::coroutine_handle<> handle;
        bool *satisfied;   ///< Set when a message was matched.
        Message *slot;     ///< Where to deposit the message.
    };

    /** Try to hand @p m directly to a blocked matching reader. */
    bool handToReader(Message &m);

    /** Wake one blocked writer (space may now be available). */
    void wakeWriters();

    /** Find a queued message matching @p tag (or any, if nullopt). */
    std::optional<Message>
    takeMatching(const std::optional<std::uint64_t> &tag);

    /** Release the CAB data-RAM backing of a consumed message. */
    void releaseBacking(const Message &m);

    Kernel &kernel;
    MailboxId _id;
    std::string _name;
    std::uint32_t capacityBytes;
    std::uint32_t _bytesUsed = 0;

    std::deque<Message> messages;
    std::deque<Reader> readers;
    std::deque<std::coroutine_handle<>> writers;

    sim::Counter _puts;
    sim::Counter _gets;
    sim::Counter _putFails;
};

} // namespace nectar::cabos
