/**
 * @file
 * The CAB kernel: lightweight threads, mailboxes, memory and timers.
 *
 * Section 6.1: "To provide the required efficiency and flexibility,
 * we built the CAB kernel around lightweight processes similar to
 * Mach threads.  Threads support multitasking so the CAB can execute
 * multiple activities concurrently in a time-shared fashion, but,
 * since threads have little state associated with them, the cost of
 * context switching is low.  Thread switching takes between 10 and 15
 * microseconds; almost all of this time is spent saving and restoring
 * the SPARC register windows.  Threads execute as a set of
 * coroutines, using a simple, non-preemptive scheduler."
 *
 * Simulated threads are C++20 coroutines; blocking operations
 * (mailbox reads, sleeps) suspend the coroutine and charge the
 * documented context-switch cost on resumption.
 */

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "cab/cab.hh"
#include "cabos/allocator.hh"
#include "cabos/mailbox.hh"
#include "sim/component.hh"
#include "sim/coro.hh"
#include "sim/owner.hh"

namespace nectar::cabos {

/**
 * The per-CAB operating system kernel.
 */
class Kernel : public sim::Component
{
  public:
    /** @param board The CAB hardware this kernel runs on. */
    explicit Kernel(cab::Cab &board);

    cab::Cab &board() { return _board; }
    const cab::CabCostModel &costs() const { return _board.costs(); }
    BufferAllocator &allocator() { return alloc; }

    // ----- Threads ---------------------------------------------------

    /**
     * Start a kernel thread running @p body.  Threads are
     * non-preemptive: they run until they block on a mailbox, sleep,
     * or finish.
     */
    void spawnThread(const std::string &name, sim::Task<void> body);

    /** Threads started over the kernel's lifetime. */
    std::uint64_t threadsSpawned() const { return _spawned.value(); }

    /** Threads currently alive (not yet completed). */
    int aliveThreads() const { return _alive; }

    /** Context switches performed (each costs ~12.5 us of CPU). */
    std::uint64_t threadSwitches() const { return _switches.value(); }

    /** Record a context switch (called by blocking primitives). */
    void noteThreadSwitch() { _switches.add(); }

    /** Awaitable: charge CPU compute time to the calling thread. */
    auto
    compute(sim::Tick cost)
    {
        SIM_OWNER_INVARIANT(*this, _board,
                            name() + ": kernel off its board's cluster");
        return _board.cpu().compute(cost);
    }

    /**
     * Awaitable: block the calling thread for @p d of simulated time
     * (hardware timer + context switch on wakeup).
     */
    sim::Task<void> sleepFor(sim::Tick d);

    // ----- Mailboxes -------------------------------------------------

    /**
     * Create a mailbox.
     *
     * @param name Instance name.
     * @param capacityBytes Payload capacity.
     * @param id Explicit id, or 0 to auto-assign (ids >= 1).
     */
    Mailbox &createMailbox(const std::string &name,
                           std::uint32_t capacityBytes,
                           MailboxId id = 0);

    /** Look up a mailbox; nullptr if unknown. */
    Mailbox *mailbox(MailboxId id);

    /** Destroy a mailbox (releases its message backings). */
    bool destroyMailbox(MailboxId id);

    std::size_t mailboxCount() const { return boxes.size(); }

    // ----- Protection domains ---------------------------------------

    /**
     * Allocate a user protection domain ("The assignment of
     * protection domains is under the control of the CAB operating
     * system kernel", Section 5.2).
     *
     * @return Domain index, or -1 if all are in use.
     */
    cab::Domain allocateDomain();

    /** Return a domain to the pool and revoke its permissions. */
    void freeDomain(cab::Domain d);

  private:
    sim::Task<void> threadRunner(std::string name,
                                 sim::Task<void> body);

    cab::Cab &_board;
    BufferAllocator alloc;
    std::map<MailboxId, std::unique_ptr<Mailbox>> boxes;
    MailboxId nextMailboxId = 1;

    sim::Counter _spawned;
    sim::Counter _switches;
    int _alive = 0;

    std::uint32_t domainBitmap = 0;
};

} // namespace nectar::cabos
