/**
 * @file
 * The CAB kernel's buffer allocator over data memory.
 *
 * Section 6.1: "The CAB kernel provides support for simple,
 * time-critical operations such as memory management and timers."
 * Mailbox buffers and protocol packet buffers are carved out of the
 * 1 MB data RAM region by this first-fit allocator; the kernel grants
 * page permissions for each allocation to the owning protection
 * domain.
 */

#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "cab/memory.hh"
#include "sim/stats.hh"

namespace nectar::cabos {

/**
 * First-fit allocator over a contiguous address range.
 */
class BufferAllocator
{
  public:
    /**
     * @param base First managed address.
     * @param size Managed bytes.
     */
    BufferAllocator(std::uint32_t base, std::uint32_t size);

    /** Allocator covering the whole CAB data RAM region. */
    static BufferAllocator
    forDataRam()
    {
        return BufferAllocator(cab::addrmap::dataRamBase,
                               cab::addrmap::dataRamSize);
    }

    /**
     * Allocate @p len bytes.
     * @return Start address, or nullopt if no fit exists.
     */
    std::optional<std::uint32_t> allocate(std::uint32_t len);

    /**
     * Release a prior allocation.
     * @return false if @p addr is not an allocation start address.
     */
    bool release(std::uint32_t addr);

    /** Bytes currently allocated. */
    std::uint32_t bytesInUse() const { return used; }

    /** Bytes available (may be fragmented). */
    std::uint32_t bytesFree() const { return size - used; }

    /** Number of live allocations. */
    std::size_t allocationCount() const { return live.size(); }

    /** Largest single allocatable block right now. */
    std::uint32_t largestFreeBlock() const;

    std::uint64_t totalAllocs() const { return allocs.value(); }
    std::uint64_t failedAllocs() const { return fails.value(); }

  private:
    std::uint32_t base;
    std::uint32_t size;
    std::uint32_t used = 0;
    std::map<std::uint32_t, std::uint32_t> free_; ///< addr -> len.
    std::map<std::uint32_t, std::uint32_t> live;  ///< addr -> len.
    sim::Counter allocs;
    sim::Counter fails;
};

} // namespace nectar::cabos
