#include "mailbox.hh"

#include "cabos/kernel.hh"
#include "sim/logging.hh"

namespace nectar::cabos {

namespace {

/**
 * Awaiter for blocking reads.  If a matching message is queued, the
 * read completes inline; otherwise the reader suspends and a producer
 * deposits the message directly (zero-copy handoff).
 */
struct RecvAwaiter
{
    Mailbox &mb;
    std::optional<std::uint64_t> tag;
    Message msg;
    bool suspended = false;
    bool satisfied = false;

    bool await_ready();
    void await_suspend(std::coroutine_handle<> h);
    Message await_resume() { return std::move(msg); }
};

/** Awaiter for blocked writers: suspend until space may exist. */
struct WriterWait
{
    Mailbox &mb;

    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const {}
};

} // namespace

Mailbox::Mailbox(Kernel &kernel, MailboxId id, std::string name,
                 std::uint32_t capacityBytes)
    : kernel(kernel), _id(id), _name(std::move(name)),
      capacityBytes(capacityBytes)
{
}

Mailbox::~Mailbox()
{
    for (const auto &m : messages)
        releaseBacking(m);
}

void
Mailbox::releaseBacking(const Message &m)
{
    if (m.bufferAddr != 0)
        kernel.allocator().release(m.bufferAddr);
}

bool
Mailbox::handToReader(Message &m)
{
    for (auto it = readers.begin(); it != readers.end(); ++it) {
        if (it->tag && *it->tag != m.tag)
            continue;
        *it->slot = std::move(m);
        *it->satisfied = true;
        auto h = it->handle;
        readers.erase(it);
        // Resume through the event queue so the producer's stack
        // unwinds first.
        kernel.eventq().scheduleIn(sim::ticks::immediate,
                                   [h] { h.resume(); },
                                   sim::EventPriority::software);
        return true;
    }
    return false;
}

bool
Mailbox::tryPut(Message m)
{
    m.arrival = kernel.now();
    kernel.board().cpu().charge(kernel.costs().mailboxOp);

    // Zero-copy handoff to a blocked matching reader: no mailbox
    // space is consumed.
    if (handToReader(m)) {
        _puts.add();
        _gets.add();
        return true;
    }

    auto len = static_cast<std::uint32_t>(m.size());
    if (_bytesUsed + len > capacityBytes) {
        _putFails.add();
        return false;
    }
    // Back the message with real CAB data RAM (at least one byte so
    // zero-length messages still occupy an allocation slot).
    auto addr = kernel.allocator().allocate(std::max<std::uint32_t>(
        len, 1));
    if (!addr) {
        _putFails.add();
        return false;
    }
    m.bufferAddr = *addr;
    _bytesUsed += len;
    messages.push_back(std::move(m));
    _puts.add();
    return true;
}

sim::Task<void>
Mailbox::put(Message m)
{
    for (;;) {
        // Attempt without consuming m on failure.
        Message attempt = m;
        if (tryPut(std::move(attempt)))
            co_return;
        co_await WriterWait{*this};
        kernel.noteThreadSwitch();
        co_await kernel.board().cpu().compute(
            kernel.costs().threadSwitch);
    }
}

std::optional<Message>
Mailbox::takeMatching(const std::optional<std::uint64_t> &tag)
{
    for (auto it = messages.begin(); it != messages.end(); ++it) {
        if (tag && it->tag != *tag)
            continue;
        Message m = std::move(*it);
        _bytesUsed -= static_cast<std::uint32_t>(m.size());
        messages.erase(it);
        releaseBacking(m);
        return m;
    }
    return std::nullopt;
}

std::optional<Message>
Mailbox::tryGet()
{
    auto m = takeMatching(std::nullopt);
    if (m) {
        _gets.add();
        kernel.board().cpu().charge(kernel.costs().mailboxOp);
        wakeWriters();
    }
    return m;
}

std::optional<Message>
Mailbox::tryGetTag(std::uint64_t tag)
{
    auto m = takeMatching(tag);
    if (m) {
        _gets.add();
        kernel.board().cpu().charge(kernel.costs().mailboxOp);
        wakeWriters();
    }
    return m;
}

bool
RecvAwaiter::await_ready()
{
    auto m = mb.awaiterTake(tag);
    if (m) {
        msg = std::move(*m);
        return true;
    }
    return false;
}

void
RecvAwaiter::await_suspend(std::coroutine_handle<> h)
{
    suspended = true;
    mb.registerReader(tag, h, &satisfied, &msg);
}

void
WriterWait::await_suspend(std::coroutine_handle<> h)
{
    mb.registerWriter(h);
}

sim::Task<Message>
Mailbox::get()
{
    RecvAwaiter aw{*this, std::nullopt, Message{}, false, false};
    Message m = co_await aw;
    _gets.add();
    wakeWriters();
    sim::Tick cost = kernel.costs().mailboxOp;
    if (aw.suspended) {
        kernel.noteThreadSwitch();
        cost += kernel.costs().threadSwitch;
    }
    co_await kernel.board().cpu().compute(cost);
    co_return m;
}

sim::Task<Message>
Mailbox::getTag(std::uint64_t tag)
{
    RecvAwaiter aw{*this, tag, Message{}, false, false};
    Message m = co_await aw;
    _gets.add();
    wakeWriters();
    sim::Tick cost = kernel.costs().mailboxOp;
    if (aw.suspended) {
        kernel.noteThreadSwitch();
        cost += kernel.costs().threadSwitch;
    }
    co_await kernel.board().cpu().compute(cost);
    co_return m;
}

void
Mailbox::wakeWriters()
{
    while (!writers.empty()) {
        auto h = writers.front();
        writers.pop_front();
        kernel.eventq().scheduleIn(sim::ticks::immediate,
                                   [h] { h.resume(); },
                                   sim::EventPriority::software);
    }
}

} // namespace nectar::cabos
