# Empty compiler generated dependencies file for test_inet.
# This may be replaced when dependencies are built.
