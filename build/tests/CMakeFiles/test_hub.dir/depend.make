# Empty dependencies file for test_hub.
# This may be replaced when dependencies are built.
