
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_hub.cc" "tests/CMakeFiles/test_hub.dir/test_hub.cc.o" "gcc" "tests/CMakeFiles/test_hub.dir/test_hub.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hub/CMakeFiles/nectar_hub.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/nectar_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/phys/CMakeFiles/nectar_phys.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nectar_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
