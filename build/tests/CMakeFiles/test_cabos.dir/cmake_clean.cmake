file(REMOVE_RECURSE
  "CMakeFiles/test_cabos.dir/test_cabos.cc.o"
  "CMakeFiles/test_cabos.dir/test_cabos.cc.o.d"
  "test_cabos"
  "test_cabos.pdb"
  "test_cabos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cabos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
