# Empty dependencies file for test_cabos.
# This may be replaced when dependencies are built.
