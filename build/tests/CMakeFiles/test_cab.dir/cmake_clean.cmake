file(REMOVE_RECURSE
  "CMakeFiles/test_cab.dir/test_cab.cc.o"
  "CMakeFiles/test_cab.dir/test_cab.cc.o.d"
  "test_cab"
  "test_cab.pdb"
  "test_cab[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
