# Empty dependencies file for test_cab.
# This may be replaced when dependencies are built.
