file(REMOVE_RECURSE
  "CMakeFiles/test_coro.dir/test_coro.cc.o"
  "CMakeFiles/test_coro.dir/test_coro.cc.o.d"
  "test_coro"
  "test_coro.pdb"
  "test_coro[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
