# Empty compiler generated dependencies file for test_coro.
# This may be replaced when dependencies are built.
