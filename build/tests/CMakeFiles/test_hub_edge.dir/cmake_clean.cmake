file(REMOVE_RECURSE
  "CMakeFiles/test_hub_edge.dir/test_hub_edge.cc.o"
  "CMakeFiles/test_hub_edge.dir/test_hub_edge.cc.o.d"
  "test_hub_edge"
  "test_hub_edge.pdb"
  "test_hub_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hub_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
