# Empty dependencies file for test_nectarine.
# This may be replaced when dependencies are built.
