file(REMOVE_RECURSE
  "CMakeFiles/test_nectarine.dir/test_nectarine.cc.o"
  "CMakeFiles/test_nectarine.dir/test_nectarine.cc.o.d"
  "test_nectarine"
  "test_nectarine.pdb"
  "test_nectarine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nectarine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
