file(REMOVE_RECURSE
  "CMakeFiles/test_coro_sync.dir/test_coro_sync.cc.o"
  "CMakeFiles/test_coro_sync.dir/test_coro_sync.cc.o.d"
  "test_coro_sync"
  "test_coro_sync.pdb"
  "test_coro_sync[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coro_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
