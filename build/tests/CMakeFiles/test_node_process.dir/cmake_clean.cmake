file(REMOVE_RECURSE
  "CMakeFiles/test_node_process.dir/test_node_process.cc.o"
  "CMakeFiles/test_node_process.dir/test_node_process.cc.o.d"
  "test_node_process"
  "test_node_process.pdb"
  "test_node_process[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_node_process.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
