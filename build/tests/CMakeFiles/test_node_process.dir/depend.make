# Empty dependencies file for test_node_process.
# This may be replaced when dependencies are built.
