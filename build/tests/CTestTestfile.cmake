# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_event_queue[1]_include.cmake")
include("/root/repo/build/tests/test_random[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_coro[1]_include.cmake")
include("/root/repo/build/tests/test_crossbar[1]_include.cmake")
include("/root/repo/build/tests/test_hub[1]_include.cmake")
include("/root/repo/build/tests/test_cab[1]_include.cmake")
include("/root/repo/build/tests/test_cabos[1]_include.cmake")
include("/root/repo/build/tests/test_datalink[1]_include.cmake")
include("/root/repo/build/tests/test_transport[1]_include.cmake")
include("/root/repo/build/tests/test_node[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_nectarine[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_phys[1]_include.cmake")
include("/root/repo/build/tests/test_topo[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_inet[1]_include.cmake")
include("/root/repo/build/tests/test_coro_sync[1]_include.cmake")
include("/root/repo/build/tests/test_hub_edge[1]_include.cmake")
include("/root/repo/build/tests/test_transport_edge[1]_include.cmake")
include("/root/repo/build/tests/test_node_process[1]_include.cmake")
