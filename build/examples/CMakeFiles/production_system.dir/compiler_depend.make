# Empty compiler generated dependencies file for production_system.
# This may be replaced when dependencies are built.
