file(REMOVE_RECURSE
  "CMakeFiles/multihub_mesh.dir/multihub_mesh.cc.o"
  "CMakeFiles/multihub_mesh.dir/multihub_mesh.cc.o.d"
  "multihub_mesh"
  "multihub_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multihub_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
