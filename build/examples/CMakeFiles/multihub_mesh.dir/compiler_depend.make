# Empty compiler generated dependencies file for multihub_mesh.
# This may be replaced when dependencies are built.
