file(REMOVE_RECURSE
  "CMakeFiles/ipsc_annealing.dir/ipsc_annealing.cc.o"
  "CMakeFiles/ipsc_annealing.dir/ipsc_annealing.cc.o.d"
  "ipsc_annealing"
  "ipsc_annealing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipsc_annealing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
