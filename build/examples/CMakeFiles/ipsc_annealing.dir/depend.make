# Empty dependencies file for ipsc_annealing.
# This may be replaced when dependencies are built.
