file(REMOVE_RECURSE
  "CMakeFiles/ipsc_hypercube.dir/ipsc_hypercube.cc.o"
  "CMakeFiles/ipsc_hypercube.dir/ipsc_hypercube.cc.o.d"
  "ipsc_hypercube"
  "ipsc_hypercube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipsc_hypercube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
