# Empty compiler generated dependencies file for ipsc_hypercube.
# This may be replaced when dependencies are built.
