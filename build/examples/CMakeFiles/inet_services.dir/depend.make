# Empty dependencies file for inet_services.
# This may be replaced when dependencies are built.
