file(REMOVE_RECURSE
  "CMakeFiles/inet_services.dir/inet_services.cc.o"
  "CMakeFiles/inet_services.dir/inet_services.cc.o.d"
  "inet_services"
  "inet_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inet_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
