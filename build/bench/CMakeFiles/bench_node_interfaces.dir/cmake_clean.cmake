file(REMOVE_RECURSE
  "CMakeFiles/bench_node_interfaces.dir/bench_node_interfaces.cc.o"
  "CMakeFiles/bench_node_interfaces.dir/bench_node_interfaces.cc.o.d"
  "bench_node_interfaces"
  "bench_node_interfaces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_node_interfaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
