# Empty dependencies file for bench_node_interfaces.
# This may be replaced when dependencies are built.
