file(REMOVE_RECURSE
  "CMakeFiles/bench_hub_latency.dir/bench_hub_latency.cc.o"
  "CMakeFiles/bench_hub_latency.dir/bench_hub_latency.cc.o.d"
  "bench_hub_latency"
  "bench_hub_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hub_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
