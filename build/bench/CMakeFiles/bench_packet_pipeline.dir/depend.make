# Empty dependencies file for bench_packet_pipeline.
# This may be replaced when dependencies are built.
