file(REMOVE_RECURSE
  "CMakeFiles/bench_packet_pipeline.dir/bench_packet_pipeline.cc.o"
  "CMakeFiles/bench_packet_pipeline.dir/bench_packet_pipeline.cc.o.d"
  "bench_packet_pipeline"
  "bench_packet_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_packet_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
