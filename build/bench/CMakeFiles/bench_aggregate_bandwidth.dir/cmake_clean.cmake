file(REMOVE_RECURSE
  "CMakeFiles/bench_aggregate_bandwidth.dir/bench_aggregate_bandwidth.cc.o"
  "CMakeFiles/bench_aggregate_bandwidth.dir/bench_aggregate_bandwidth.cc.o.d"
  "bench_aggregate_bandwidth"
  "bench_aggregate_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_aggregate_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
