# Empty compiler generated dependencies file for bench_aggregate_bandwidth.
# This may be replaced when dependencies are built.
