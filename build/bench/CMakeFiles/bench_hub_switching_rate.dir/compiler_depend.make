# Empty compiler generated dependencies file for bench_hub_switching_rate.
# This may be replaced when dependencies are built.
