file(REMOVE_RECURSE
  "CMakeFiles/bench_hub_switching_rate.dir/bench_hub_switching_rate.cc.o"
  "CMakeFiles/bench_hub_switching_rate.dir/bench_hub_switching_rate.cc.o.d"
  "bench_hub_switching_rate"
  "bench_hub_switching_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hub_switching_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
