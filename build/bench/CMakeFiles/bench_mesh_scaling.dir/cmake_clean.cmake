file(REMOVE_RECURSE
  "CMakeFiles/bench_mesh_scaling.dir/bench_mesh_scaling.cc.o"
  "CMakeFiles/bench_mesh_scaling.dir/bench_mesh_scaling.cc.o.d"
  "bench_mesh_scaling"
  "bench_mesh_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mesh_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
