# Empty compiler generated dependencies file for bench_mesh_scaling.
# This may be replaced when dependencies are built.
