file(REMOVE_RECURSE
  "CMakeFiles/bench_switching_modes.dir/bench_switching_modes.cc.o"
  "CMakeFiles/bench_switching_modes.dir/bench_switching_modes.cc.o.d"
  "bench_switching_modes"
  "bench_switching_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_switching_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
