# Empty dependencies file for bench_switching_modes.
# This may be replaced when dependencies are built.
