file(REMOVE_RECURSE
  "CMakeFiles/bench_cab_kernel.dir/bench_cab_kernel.cc.o"
  "CMakeFiles/bench_cab_kernel.dir/bench_cab_kernel.cc.o.d"
  "bench_cab_kernel"
  "bench_cab_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cab_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
