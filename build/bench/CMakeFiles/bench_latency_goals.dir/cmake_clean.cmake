file(REMOVE_RECURSE
  "CMakeFiles/bench_latency_goals.dir/bench_latency_goals.cc.o"
  "CMakeFiles/bench_latency_goals.dir/bench_latency_goals.cc.o.d"
  "bench_latency_goals"
  "bench_latency_goals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_latency_goals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
