# Empty dependencies file for bench_latency_goals.
# This may be replaced when dependencies are built.
