file(REMOVE_RECURSE
  "CMakeFiles/bench_cab_memory.dir/bench_cab_memory.cc.o"
  "CMakeFiles/bench_cab_memory.dir/bench_cab_memory.cc.o.d"
  "bench_cab_memory"
  "bench_cab_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cab_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
