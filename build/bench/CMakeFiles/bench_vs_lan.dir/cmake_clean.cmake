file(REMOVE_RECURSE
  "CMakeFiles/bench_vs_lan.dir/bench_vs_lan.cc.o"
  "CMakeFiles/bench_vs_lan.dir/bench_vs_lan.cc.o.d"
  "bench_vs_lan"
  "bench_vs_lan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vs_lan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
