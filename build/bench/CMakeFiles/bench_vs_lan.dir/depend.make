# Empty dependencies file for bench_vs_lan.
# This may be replaced when dependencies are built.
