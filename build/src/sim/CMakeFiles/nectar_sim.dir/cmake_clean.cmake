file(REMOVE_RECURSE
  "CMakeFiles/nectar_sim.dir/event_queue.cc.o"
  "CMakeFiles/nectar_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/nectar_sim.dir/logging.cc.o"
  "CMakeFiles/nectar_sim.dir/logging.cc.o.d"
  "CMakeFiles/nectar_sim.dir/random.cc.o"
  "CMakeFiles/nectar_sim.dir/random.cc.o.d"
  "CMakeFiles/nectar_sim.dir/stats.cc.o"
  "CMakeFiles/nectar_sim.dir/stats.cc.o.d"
  "libnectar_sim.a"
  "libnectar_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nectar_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
