# Empty dependencies file for nectar_topo.
# This may be replaced when dependencies are built.
