file(REMOVE_RECURSE
  "libnectar_topo.a"
)
