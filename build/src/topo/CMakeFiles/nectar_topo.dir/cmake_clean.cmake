file(REMOVE_RECURSE
  "CMakeFiles/nectar_topo.dir/topology.cc.o"
  "CMakeFiles/nectar_topo.dir/topology.cc.o.d"
  "libnectar_topo.a"
  "libnectar_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nectar_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
