file(REMOVE_RECURSE
  "CMakeFiles/nectar_cabos.dir/allocator.cc.o"
  "CMakeFiles/nectar_cabos.dir/allocator.cc.o.d"
  "CMakeFiles/nectar_cabos.dir/kernel.cc.o"
  "CMakeFiles/nectar_cabos.dir/kernel.cc.o.d"
  "CMakeFiles/nectar_cabos.dir/mailbox.cc.o"
  "CMakeFiles/nectar_cabos.dir/mailbox.cc.o.d"
  "libnectar_cabos.a"
  "libnectar_cabos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nectar_cabos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
