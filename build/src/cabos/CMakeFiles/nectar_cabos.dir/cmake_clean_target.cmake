file(REMOVE_RECURSE
  "libnectar_cabos.a"
)
