# Empty dependencies file for nectar_cabos.
# This may be replaced when dependencies are built.
