# CMake generated Testfile for 
# Source directory: /root/repo/src/cabos
# Build directory: /root/repo/build/src/cabos
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
