# Empty compiler generated dependencies file for nectar_inet.
# This may be replaced when dependencies are built.
