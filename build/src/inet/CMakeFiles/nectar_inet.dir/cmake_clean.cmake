file(REMOVE_RECURSE
  "CMakeFiles/nectar_inet.dir/ip.cc.o"
  "CMakeFiles/nectar_inet.dir/ip.cc.o.d"
  "CMakeFiles/nectar_inet.dir/tcp.cc.o"
  "CMakeFiles/nectar_inet.dir/tcp.cc.o.d"
  "libnectar_inet.a"
  "libnectar_inet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nectar_inet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
