file(REMOVE_RECURSE
  "libnectar_inet.a"
)
