# Empty compiler generated dependencies file for nectar_phys.
# This may be replaced when dependencies are built.
