file(REMOVE_RECURSE
  "libnectar_phys.a"
)
