file(REMOVE_RECURSE
  "CMakeFiles/nectar_phys.dir/fiber.cc.o"
  "CMakeFiles/nectar_phys.dir/fiber.cc.o.d"
  "CMakeFiles/nectar_phys.dir/wire.cc.o"
  "CMakeFiles/nectar_phys.dir/wire.cc.o.d"
  "libnectar_phys.a"
  "libnectar_phys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nectar_phys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
