# Empty compiler generated dependencies file for nectar_baseline.
# This may be replaced when dependencies are built.
