file(REMOVE_RECURSE
  "libnectar_baseline.a"
)
