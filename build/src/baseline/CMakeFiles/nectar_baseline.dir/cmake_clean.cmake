file(REMOVE_RECURSE
  "CMakeFiles/nectar_baseline.dir/ethernet.cc.o"
  "CMakeFiles/nectar_baseline.dir/ethernet.cc.o.d"
  "libnectar_baseline.a"
  "libnectar_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nectar_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
