# Empty dependencies file for nectar_workload.
# This may be replaced when dependencies are built.
