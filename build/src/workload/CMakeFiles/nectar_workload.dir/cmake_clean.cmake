file(REMOVE_RECURSE
  "CMakeFiles/nectar_workload.dir/halo.cc.o"
  "CMakeFiles/nectar_workload.dir/halo.cc.o.d"
  "CMakeFiles/nectar_workload.dir/probes.cc.o"
  "CMakeFiles/nectar_workload.dir/probes.cc.o.d"
  "CMakeFiles/nectar_workload.dir/production.cc.o"
  "CMakeFiles/nectar_workload.dir/production.cc.o.d"
  "CMakeFiles/nectar_workload.dir/traffic.cc.o"
  "CMakeFiles/nectar_workload.dir/traffic.cc.o.d"
  "CMakeFiles/nectar_workload.dir/vision.cc.o"
  "CMakeFiles/nectar_workload.dir/vision.cc.o.d"
  "libnectar_workload.a"
  "libnectar_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nectar_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
