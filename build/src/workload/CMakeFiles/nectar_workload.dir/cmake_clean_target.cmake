file(REMOVE_RECURSE
  "libnectar_workload.a"
)
