file(REMOVE_RECURSE
  "CMakeFiles/nectar_transport.dir/header.cc.o"
  "CMakeFiles/nectar_transport.dir/header.cc.o.d"
  "CMakeFiles/nectar_transport.dir/transport.cc.o"
  "CMakeFiles/nectar_transport.dir/transport.cc.o.d"
  "libnectar_transport.a"
  "libnectar_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nectar_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
