file(REMOVE_RECURSE
  "libnectar_transport.a"
)
