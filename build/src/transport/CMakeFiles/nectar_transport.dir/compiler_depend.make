# Empty compiler generated dependencies file for nectar_transport.
# This may be replaced when dependencies are built.
