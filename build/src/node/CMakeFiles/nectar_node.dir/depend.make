# Empty dependencies file for nectar_node.
# This may be replaced when dependencies are built.
