# Empty compiler generated dependencies file for nectar_node.
# This may be replaced when dependencies are built.
