file(REMOVE_RECURSE
  "CMakeFiles/nectar_node.dir/interfaces.cc.o"
  "CMakeFiles/nectar_node.dir/interfaces.cc.o.d"
  "CMakeFiles/nectar_node.dir/netstack.cc.o"
  "CMakeFiles/nectar_node.dir/netstack.cc.o.d"
  "CMakeFiles/nectar_node.dir/node_process.cc.o"
  "CMakeFiles/nectar_node.dir/node_process.cc.o.d"
  "libnectar_node.a"
  "libnectar_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nectar_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
