file(REMOVE_RECURSE
  "libnectar_node.a"
)
