file(REMOVE_RECURSE
  "libnectar_hub.a"
)
