file(REMOVE_RECURSE
  "CMakeFiles/nectar_hub.dir/commands.cc.o"
  "CMakeFiles/nectar_hub.dir/commands.cc.o.d"
  "CMakeFiles/nectar_hub.dir/controller.cc.o"
  "CMakeFiles/nectar_hub.dir/controller.cc.o.d"
  "CMakeFiles/nectar_hub.dir/crossbar.cc.o"
  "CMakeFiles/nectar_hub.dir/crossbar.cc.o.d"
  "CMakeFiles/nectar_hub.dir/hub.cc.o"
  "CMakeFiles/nectar_hub.dir/hub.cc.o.d"
  "CMakeFiles/nectar_hub.dir/port.cc.o"
  "CMakeFiles/nectar_hub.dir/port.cc.o.d"
  "libnectar_hub.a"
  "libnectar_hub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nectar_hub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
