
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hub/commands.cc" "src/hub/CMakeFiles/nectar_hub.dir/commands.cc.o" "gcc" "src/hub/CMakeFiles/nectar_hub.dir/commands.cc.o.d"
  "/root/repo/src/hub/controller.cc" "src/hub/CMakeFiles/nectar_hub.dir/controller.cc.o" "gcc" "src/hub/CMakeFiles/nectar_hub.dir/controller.cc.o.d"
  "/root/repo/src/hub/crossbar.cc" "src/hub/CMakeFiles/nectar_hub.dir/crossbar.cc.o" "gcc" "src/hub/CMakeFiles/nectar_hub.dir/crossbar.cc.o.d"
  "/root/repo/src/hub/hub.cc" "src/hub/CMakeFiles/nectar_hub.dir/hub.cc.o" "gcc" "src/hub/CMakeFiles/nectar_hub.dir/hub.cc.o.d"
  "/root/repo/src/hub/port.cc" "src/hub/CMakeFiles/nectar_hub.dir/port.cc.o" "gcc" "src/hub/CMakeFiles/nectar_hub.dir/port.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/phys/CMakeFiles/nectar_phys.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nectar_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
