# Empty compiler generated dependencies file for nectar_hub.
# This may be replaced when dependencies are built.
