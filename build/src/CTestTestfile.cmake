# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("phys")
subdirs("hub")
subdirs("topo")
subdirs("cab")
subdirs("cabos")
subdirs("datalink")
subdirs("transport")
subdirs("nectarine")
subdirs("node")
subdirs("baseline")
subdirs("workload")
subdirs("inet")
