file(REMOVE_RECURSE
  "CMakeFiles/nectar_cab.dir/cab.cc.o"
  "CMakeFiles/nectar_cab.dir/cab.cc.o.d"
  "CMakeFiles/nectar_cab.dir/checksum.cc.o"
  "CMakeFiles/nectar_cab.dir/checksum.cc.o.d"
  "CMakeFiles/nectar_cab.dir/memory.cc.o"
  "CMakeFiles/nectar_cab.dir/memory.cc.o.d"
  "CMakeFiles/nectar_cab.dir/protection.cc.o"
  "CMakeFiles/nectar_cab.dir/protection.cc.o.d"
  "libnectar_cab.a"
  "libnectar_cab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nectar_cab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
