file(REMOVE_RECURSE
  "libnectar_cab.a"
)
