# CMake generated Testfile for 
# Source directory: /root/repo/src/cab
# Build directory: /root/repo/build/src/cab
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
