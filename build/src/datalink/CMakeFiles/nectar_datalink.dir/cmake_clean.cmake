file(REMOVE_RECURSE
  "CMakeFiles/nectar_datalink.dir/datalink.cc.o"
  "CMakeFiles/nectar_datalink.dir/datalink.cc.o.d"
  "libnectar_datalink.a"
  "libnectar_datalink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nectar_datalink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
