# Empty dependencies file for nectar_datalink.
# This may be replaced when dependencies are built.
