file(REMOVE_RECURSE
  "libnectar_datalink.a"
)
