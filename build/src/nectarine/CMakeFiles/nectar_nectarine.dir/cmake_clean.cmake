file(REMOVE_RECURSE
  "CMakeFiles/nectar_nectarine.dir/ipsc.cc.o"
  "CMakeFiles/nectar_nectarine.dir/ipsc.cc.o.d"
  "CMakeFiles/nectar_nectarine.dir/nectarine.cc.o"
  "CMakeFiles/nectar_nectarine.dir/nectarine.cc.o.d"
  "CMakeFiles/nectar_nectarine.dir/system.cc.o"
  "CMakeFiles/nectar_nectarine.dir/system.cc.o.d"
  "libnectar_nectarine.a"
  "libnectar_nectarine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nectar_nectarine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
