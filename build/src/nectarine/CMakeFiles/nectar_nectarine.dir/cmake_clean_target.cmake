file(REMOVE_RECURSE
  "libnectar_nectarine.a"
)
