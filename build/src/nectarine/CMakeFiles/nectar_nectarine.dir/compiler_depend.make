# Empty compiler generated dependencies file for nectar_nectarine.
# This may be replaced when dependencies are built.
