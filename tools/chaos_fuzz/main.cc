/**
 * @file
 * chaos_fuzz: randomized fault-plan fuzzing driver.
 *
 * Runs N generated seeds through the standard fuzz harness
 * (fault::runCase), checking every campaign against the
 * DeliveryOracle.  On a failing seed the plan is minimized with the
 * delta-debugging shrinker and written to a repro file that replays
 * the failure deterministically (`--replay` reruns such a file).
 *
 * Usage:
 *   chaos_fuzz [--seeds N] [--seed0 S] [--out DIR]
 *              [--intensity X] [--inject-bug] [--replay FILE]
 *              [--fabric mesh|torus|fattree|FILE.topo]
 *              [--serving N] [--threads N]
 *
 * --fabric picks the harness system: the named generator at the
 * standard 2x2x2 size, or any .topo fabric file (a path ending in
 * .topo), so the same seed sweep can exercise inter-HUB trunk faults
 * on irregular multi-HUB fabrics.
 *
 * --serving N adds the serving-load scenario: N open-loop RPC
 * arrivals per site (src/serving) in flight while the oracle judges
 * the ledgered traffic and the drain.
 *
 * --threads N (> 1) runs every campaign on the parallel simulation
 * core (one cluster per HUB, stepped fault injection), fuzzing the
 * engine's mailboxes, barriers, and shared-service locking along
 * with the protocols.  Incompatible with --inject-bug.
 *
 * Exit status: 0 when every seed passed, 1 on any oracle failure,
 * 2 on usage errors.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "fault/fuzz.hh"
#include "fault/generate.hh"
#include "fault/planio.hh"
#include "fault/shrink.hh"

using namespace nectar;

namespace {

struct Options
{
    int seeds = 20;
    std::uint64_t seed0 = 1;
    std::string outDir = ".";
    double intensity = 1.0;
    bool injectBug = false;
    std::string replayFile;
    std::string fabric = "mesh";
    int serving = 0;
    int threads = 1;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--seeds N] [--seed0 S] [--out DIR] "
                 "[--intensity X] [--inject-bug] [--replay FILE] "
                 "[--fabric mesh|torus|fattree|FILE.topo] "
                 "[--serving N] [--threads N]\n",
                 argv0);
    std::exit(2);
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (a == "--seeds")
            opt.seeds = std::atoi(value());
        else if (a == "--seed0")
            opt.seed0 = std::strtoull(value(), nullptr, 10);
        else if (a == "--out")
            opt.outDir = value();
        else if (a == "--intensity")
            opt.intensity = std::atof(value());
        else if (a == "--inject-bug")
            opt.injectBug = true;
        else if (a == "--replay")
            opt.replayFile = value();
        else if (a == "--fabric")
            opt.fabric = value();
        else if (a == "--serving")
            opt.serving = std::atoi(value());
        else if (a == "--threads")
            opt.threads = std::atoi(value());
        else
            usage(argv[0]);
    }
    if (opt.seeds < 1 && opt.replayFile.empty())
        usage(argv[0]);
    return opt;
}

void
printViolations(const fault::FuzzResult &res)
{
    for (const auto &v : res.violations)
        std::printf("    violation: %s\n", v.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);

    fault::FuzzConfig fcfg;
    fcfg.injectDeliveryBug = opt.injectBug;
    fcfg.servingArrivalsPerSite = opt.serving;
    fcfg.threads = opt.threads;
    if (opt.threads > 1 && opt.injectBug) {
        std::fprintf(stderr, "chaos_fuzz: --inject-bug requires the "
                             "single-queue harness (drop --threads)\n");
        return 2;
    }
    if (opt.fabric == "mesh")
        fcfg.fabric = fault::FuzzFabric::mesh;
    else if (opt.fabric == "torus")
        fcfg.fabric = fault::FuzzFabric::torus;
    else if (opt.fabric == "fattree")
        fcfg.fabric = fault::FuzzFabric::fattree;
    else if (opt.fabric.size() > 5 &&
             opt.fabric.substr(opt.fabric.size() - 5) == ".topo") {
        fcfg.fabric = fault::FuzzFabric::file;
        fcfg.topoFile = opt.fabric;
    } else {
        usage(argv[0]);
    }

    if (!opt.replayFile.empty()) {
        // Replay a saved repro file end to end.
        fault::FaultPlan plan = fault::loadPlan(opt.replayFile);
        auto res = fault::runCase(plan, fcfg);
        std::printf("replay %s: %s\n  %s\n", opt.replayFile.c_str(),
                    res.passed ? "PASS" : "FAIL",
                    res.oracleSummary.c_str());
        printViolations(res);
        return res.passed ? 0 : 1;
    }

    fault::GeneratorConfig gcfg;
    gcfg.intensity = opt.intensity;
    fault::PlanGenerator gen(fault::harnessShape(fcfg), gcfg);

    int failures = 0;
    std::uint64_t shrunkEvents = 0, shrinkRuns = 0;
    for (int i = 0; i < opt.seeds; ++i) {
        std::uint64_t seed = opt.seed0 + static_cast<std::uint64_t>(i);
        fault::FaultPlan plan = gen.generate(seed);
        auto res = fault::runCase(plan, fcfg);
        if (res.passed)
            continue;

        ++failures;
        // Repro files must be writable even on a fresh checkout (CI
        // points --out at a directory that does not exist yet).
        std::error_code ec;
        std::filesystem::create_directories(opt.outDir, ec);
        std::printf("seed %llu FAILED (%zu violations, plan %zu "
                    "events)\n",
                    static_cast<unsigned long long>(seed),
                    res.violations.size(), plan.events.size());
        printViolations(res);

        auto shrunk = fault::shrinkPlan(plan, [&](const auto &p) {
            return !fault::runCase(p, fcfg).passed;
        });
        shrunkEvents += shrunk.plan.events.size();
        shrinkRuns += static_cast<std::uint64_t>(shrunk.runs);

        std::string path = opt.outDir + "/repro-seed" +
                           std::to_string(seed) + ".plan";
        fault::savePlan(shrunk.plan, path);
        std::printf("  shrunk to %zu events in %d runs%s -> %s\n",
                    shrunk.plan.events.size(), shrunk.runs,
                    shrunk.oneMinimal ? " (1-minimal)" : "",
                    path.c_str());
    }

    std::printf("chaos_fuzz: %d seeds, %d failures", opt.seeds,
                failures);
    if (failures)
        std::printf(", mean shrunk plan %.1f events, %llu shrink runs",
                    static_cast<double>(shrunkEvents) / failures,
                    static_cast<unsigned long long>(shrinkRuns));
    std::printf("\n");
    return failures ? 1 : 0;
}
