#!/usr/bin/env bash
# Full static-analysis and dynamic-checking sweep:
#
#   1. nectar-lint over src/ tests/ bench/ (rules D1-D8, A1);
#   2. the component access-graph pass (D6/D8) with the fabric16
#      partition gate, writing build/partition_map.json;
#   3. clang-tidy with the repo .clang-tidy config, if installed
#      (the CI container only ships g++, so this step is skipped
#      there — run it locally where LLVM is available);
#   4. a NECTAR_CHECKED build (SIM_INVARIANT enabled) running the
#      tier-1 suite;
#   5. an address+undefined sanitizer build running the tier-1 suite.
#
# Every stage runs even when an earlier one fails; the script prints
# a per-stage summary and exits non-zero if ANY stage failed (no
# abort-on-first, no last-stage-wins).  Usage:
# tools/run_static_analysis.sh [--fast] (skip the two
# rebuild-and-test stages).

set -uo pipefail
cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

declare -a results=()
failed=0

# run <label> <cmd...>: run one stage, record its exit code, keep
# going regardless.
run() {
    local label=$1
    shift
    echo "== ${label} =="
    "$@"
    local rc=$?
    if [[ ${rc} -eq 0 ]]; then
        results+=("ok      ${label}")
    else
        results+=("FAILED  ${label} (rc=${rc})")
        failed=1
    fi
    return 0
}

# The lint binary is a hard prerequisite for stages 1-2; if it will
# not even build there is nothing meaningful to aggregate.
if ! cmake -B build -S . >/dev/null ||
   ! cmake --build build --target nectar-lint -j >/dev/null; then
    echo "error: configure/build of nectar-lint failed" >&2
    exit 2
fi

run "nectar-lint (rules D1-D8)" \
    ./build/tools/nectar-lint/nectar-lint src tests bench

run "partition gate (access graph, fabric16)" \
    ./build/tools/nectar-lint/nectar-lint \
    --graph-out build/partition_map.json \
    --topo examples/fabrics/fabric16.topo src

if command -v clang-tidy >/dev/null 2>&1; then
    tidy_stage() {
        cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
            >/dev/null &&
        mapfile -t sources < <(git ls-files 'src/*.cc') &&
        clang-tidy -p build --quiet "${sources[@]}"
    }
    run "clang-tidy" tidy_stage
else
    echo "== clang-tidy =="
    echo "clang-tidy not installed; skipping (config in .clang-tidy)"
    results+=("skipped clang-tidy (not installed)")
fi

if [[ $fast -eq 1 ]]; then
    echo "== --fast: skipping checked + sanitizer builds =="
else
    checked_stage() {
        cmake -B build-checked -S . -DNECTAR_CHECKED=ON >/dev/null &&
        cmake --build build-checked -j >/dev/null &&
        ctest --test-dir build-checked -L tier1 -j "$(nproc)" \
              --output-on-failure >/dev/null &&
        echo "tier1 green under NECTAR_CHECKED"
    }
    run "NECTAR_CHECKED build (runtime invariants)" checked_stage

    asan_stage() {
        cmake -B build-asan -S . \
              -DNECTAR_SANITIZE=address,undefined >/dev/null &&
        cmake --build build-asan -j >/dev/null &&
        ctest --test-dir build-asan -L tier1 -j "$(nproc)" \
              --output-on-failure >/dev/null &&
        echo "tier1 green under ASan+UBSan"
    }
    run "address+undefined sanitizer build" asan_stage
fi

echo "== summary =="
printf '  %s\n' "${results[@]}"
if [[ ${failed} -ne 0 ]]; then
    echo "== analysis FAILED =="
    exit 1
fi
echo "== all analysis passes clean =="
