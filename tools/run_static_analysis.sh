#!/usr/bin/env bash
# Full static-analysis and dynamic-checking sweep:
#
#   1. nectar-lint over src/ tests/ bench/ (rules D1-D5, A1);
#   2. clang-tidy with the repo .clang-tidy config, if installed
#      (the CI container only ships g++, so this step is skipped
#      there — run it locally where LLVM is available);
#   3. a NECTAR_CHECKED build (SIM_INVARIANT enabled) running the
#      tier-1 suite;
#   4. an address+undefined sanitizer build running the tier-1 suite.
#
# Any failure fails the script.  Usage: tools/run_static_analysis.sh
# [--fast] (skip the two rebuild-and-test steps).

set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "== nectar-lint =="
cmake -B build -S . >/dev/null
cmake --build build --target nectar-lint -j >/dev/null
./build/tools/nectar-lint/nectar-lint src tests bench

echo "== clang-tidy =="
if command -v clang-tidy >/dev/null 2>&1; then
    cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    mapfile -t sources < <(git ls-files 'src/*.cc')
    clang-tidy -p build --quiet "${sources[@]}"
else
    echo "clang-tidy not installed; skipping (config in .clang-tidy)"
fi

if [[ $fast -eq 1 ]]; then
    echo "== --fast: skipping checked + sanitizer builds =="
    exit 0
fi

echo "== NECTAR_CHECKED build (runtime invariants) =="
cmake -B build-checked -S . -DNECTAR_CHECKED=ON >/dev/null
cmake --build build-checked -j >/dev/null
ctest --test-dir build-checked -L tier1 -j "$(nproc)" \
      --output-on-failure >/dev/null
echo "tier1 green under NECTAR_CHECKED"

echo "== address+undefined sanitizer build =="
cmake -B build-asan -S . -DNECTAR_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j >/dev/null
ctest --test-dir build-asan -L tier1 -j "$(nproc)" \
      --output-on-failure >/dev/null
echo "tier1 green under ASan+UBSan"

echo "== all analysis passes clean =="
