#include "source.hh"

#include <algorithm>
#include <cctype>
#include <regex>

namespace nectar::lint {

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

Prepared
prepare(const std::string &text)
{
    Prepared p;
    p.code.reserve(text.size());
    p.comments.emplace_back();
    p.comments.emplace_back();
    p.hasCode.push_back(false);
    p.hasCode.push_back(false);

    enum class St { code, lineComment, blockComment, str, chr, rawStr };
    St st = St::code;
    std::string rawDelim; // for R"delim( ... )delim"
    std::size_t line = 1;

    auto newline = [&] {
        p.code.push_back('\n');
        ++line;
        p.comments.emplace_back();
        p.hasCode.push_back(false);
    };

    for (std::size_t i = 0; i < text.size(); ++i) {
        char c = text[i];
        char next = i + 1 < text.size() ? text[i + 1] : '\0';
        switch (st) {
        case St::code:
            if (c == '/' && next == '/') {
                st = St::lineComment;
                p.code += "  ";
                ++i;
            } else if (c == '/' && next == '*') {
                st = St::blockComment;
                p.code += "  ";
                ++i;
            } else if (c == '"' && i >= 1 && text[i - 1] == 'R') {
                // Raw string literal: find the delimiter up to '('.
                std::size_t paren = text.find('(', i + 1);
                rawDelim = paren == std::string::npos
                               ? std::string()
                               : text.substr(i + 1, paren - i - 1);
                st = St::rawStr;
                p.code.push_back(' ');
            } else if (c == '"') {
                st = St::str;
                p.code.push_back(' ');
            } else if (c == '\'' && !(i >= 1 && identChar(text[i - 1]))) {
                // A char literal, not a digit separator (1'000'000).
                st = St::chr;
                p.code.push_back(' ');
            } else if (c == '\n') {
                newline();
            } else {
                if (!std::isspace(static_cast<unsigned char>(c)))
                    p.hasCode[line] = true;
                p.code.push_back(c);
            }
            break;
        case St::lineComment:
            if (c == '\n') {
                st = St::code;
                newline();
            } else {
                p.comments[line].push_back(c);
                p.code.push_back(' ');
            }
            break;
        case St::blockComment:
            if (c == '*' && next == '/') {
                st = St::code;
                p.code += "  ";
                ++i;
            } else if (c == '\n') {
                newline();
            } else {
                p.comments[line].push_back(c);
                p.code.push_back(' ');
            }
            break;
        case St::str:
            if (c == '\\' && next != '\0') {
                p.code += "  ";
                ++i;
                if (next == '\n')
                    newline();
            } else if (c == '"') {
                st = St::code;
                p.code.push_back(' ');
            } else if (c == '\n') {
                newline(); // unterminated; recover per line
                st = St::code;
            } else {
                p.code.push_back(' ');
            }
            break;
        case St::chr:
            if (c == '\\' && next != '\0') {
                p.code += "  ";
                ++i;
            } else if (c == '\'') {
                st = St::code;
                p.code.push_back(' ');
            } else if (c == '\n') {
                newline();
                st = St::code;
            } else {
                p.code.push_back(' ');
            }
            break;
        case St::rawStr: {
            std::string close = ")" + rawDelim + "\"";
            if (text.compare(i, close.size(), close) == 0) {
                for (std::size_t k = 0; k < close.size(); ++k)
                    p.code.push_back(' ');
                i += close.size() - 1;
                st = St::code;
            } else if (c == '\n') {
                newline();
            } else {
                p.code.push_back(' ');
            }
            break;
        }
        }
    }
    return p;
}

int
lineOf(const std::string &code, std::size_t pos)
{
    return 1 + static_cast<int>(
                   std::count(code.begin(), code.begin() +
                              static_cast<std::ptrdiff_t>(pos), '\n'));
}

std::size_t
skipWs(const std::string &s, std::size_t i)
{
    while (i < s.size() &&
           std::isspace(static_cast<unsigned char>(s[i])))
        ++i;
    return i;
}

std::size_t
prevNonWs(const std::string &s, std::size_t i)
{
    while (i > 0) {
        --i;
        if (!std::isspace(static_cast<unsigned char>(s[i])))
            return i;
    }
    return std::string::npos;
}

std::size_t
matchBracket(const std::string &code, std::size_t open)
{
    char o = code[open];
    char c = o == '(' ? ')' : o == '[' ? ']' : o == '{' ? '}' : '>';
    int depth = 0;
    for (std::size_t i = open; i < code.size(); ++i) {
        if (code[i] == o) {
            ++depth;
        } else if (code[i] == c) {
            if (--depth == 0)
                return i + 1;
        }
    }
    return std::string::npos;
}

const std::map<std::string, std::string> &
tagToRule()
{
    static const std::map<std::string, std::string> m = {
        {"wallclock-ok", "D1"},   {"ordered-ok", "D2"},
        {"copy-ok", "D3"},        {"capture-ok", "D4"},
        {"raw-ticks-ok", "D5"},   {"mediated-ok", "D6"},
        {"global-ok", "D7"},      {"foreign-ref-ok", "D8"},
    };
    return m;
}

Suppressions
parseAnnotations(const Prepared &p, const std::string &file,
                 std::vector<Finding> &out)
{
    Suppressions sup;
    static const std::regex ann(
        R"(nectar-lint(-file)?\s*:\s*([A-Za-z0-9-]+)\s*(.*))");
    for (std::size_t ln = 1; ln < p.comments.size(); ++ln) {
        const std::string &comment = p.comments[ln];
        auto begin = std::sregex_iterator(comment.begin(),
                                          comment.end(), ann);
        for (auto it = begin; it != std::sregex_iterator(); ++it) {
            bool fileWide = (*it)[1].matched;
            std::string tag = (*it)[2].str();
            std::string why = (*it)[3].str();
            auto rule = tagToRule().find(tag);
            if (rule == tagToRule().end()) {
                out.push_back({"A1", file, static_cast<int>(ln),
                               "unknown nectar-lint tag '" + tag +
                                   "'"});
                continue;
            }
            // Trim separators; a waiver must say *why*.
            while (!why.empty() &&
                   (std::isspace(static_cast<unsigned char>(
                        why.front())) ||
                    why.front() == '-' || why.front() == ':'))
                why.erase(why.begin());
            if (why.empty()) {
                out.push_back({"A1", file, static_cast<int>(ln),
                               "nectar-lint annotation '" + tag +
                                   "' needs a justification"});
                continue;
            }
            if (fileWide) {
                sup.wholeFile.insert(rule->second);
            } else {
                auto &s = sup.lines[rule->second];
                s.insert(static_cast<int>(ln));
                // A standalone annotation (possibly continued over
                // further comment lines) covers the next code line.
                std::size_t k = ln;
                while (k < p.hasCode.size() && !p.hasCode[k])
                    s.insert(static_cast<int>(++k));
            }
        }
    }
    return sup;
}

} // namespace nectar::lint
