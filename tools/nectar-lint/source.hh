/**
 * @file
 * Shared source preparation for the nectar-lint passes.
 *
 * Both the per-file rule scanners (lint.cc, rules D1-D5 and D7) and
 * the whole-tree component-access-graph pass (graph.cc, rules D6 and
 * D8) need the same two services:
 *
 *  - prepare(): blank comments and string/char literals so scanners
 *    only ever see code, while preserving newlines (positions map to
 *    the original lines) and collecting comment text per line;
 *  - parseAnnotations(): the annotation grammar
 *    ("// nectar-lint: <tag> <why>" and the file-wide
 *    "nectar-lint-file:" form), shared so a D6 waiver in a header
 *    works identically to a D1 waiver in a .cc.
 *
 * The helpers here operate on the blanked code, so bracket matching
 * and token scans cannot be confused by literals.
 */

#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint.hh"

namespace nectar::lint {

/** A source file with comments and literals blanked out. */
struct Prepared
{
    /** Source with comments and literal contents replaced by spaces;
     *  newlines preserved so positions map to the original lines. */
    std::string code;
    /** Comment text concatenated per 1-based line. */
    std::vector<std::string> comments; // [0] unused
    /** True when the line holds any non-comment, non-space code. */
    std::vector<bool> hasCode; // [0] unused
};

/** Blank comments/literals in @p text; collect comments per line. */
Prepared prepare(const std::string &text);

/** True for identifier characters [A-Za-z0-9_]. */
bool identChar(char c);

/** 1-based line number of position @p pos in @p code. */
int lineOf(const std::string &code, std::size_t pos);

/** Skip whitespace (including newlines) forward from @p i. */
std::size_t skipWs(const std::string &s, std::size_t i);

/** Previous non-whitespace position before @p i, or npos. */
std::size_t prevNonWs(const std::string &s, std::size_t i);

/**
 * Position one past the bracket that closes the one at @p open
 * (code[open] must be '(', '[', '{' or '<'), or npos when unmatched.
 * Operates on blanked code, so literals cannot confuse the count.
 */
std::size_t matchBracket(const std::string &code, std::size_t open);

/** Annotation tag -> rule id ("mediated-ok" -> "D6", ...). */
const std::map<std::string, std::string> &tagToRule();

/** Parsed per-file rule waivers. */
struct Suppressions
{
    /** rule -> exact lines waived. */
    std::map<std::string, std::set<int>> lines;
    /** rules waived for the whole file. */
    std::set<std::string> wholeFile;

    bool
    covers(const std::string &rule, int line) const
    {
        if (wholeFile.count(rule))
            return true;
        auto it = lines.find(rule);
        return it != lines.end() && it->second.count(line) > 0;
    }
};

/**
 * Parse "nectar-lint:" annotations from @p p's comments.  Malformed
 * annotations (unknown tag, missing justification) append A1
 * findings to @p out.
 */
Suppressions parseAnnotations(const Prepared &p,
                              const std::string &file,
                              std::vector<Finding> &out);

} // namespace nectar::lint
