/**
 * @file
 * nectar-lint command-line driver.
 *
 * Usage: nectar-lint [options] <file-or-dir>...
 *
 * Directories are scanned recursively for C++ sources; build trees,
 * dot-directories and the lint-corpus fixtures (which violate rules
 * on purpose) are skipped.  Files named explicitly are always
 * linted, corpus or not — that is how the corpus tests drive the
 * binary.
 *
 * Exit status: 0 clean, 1 findings, 2 usage or I/O error.
 */

#include <algorithm>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "lint.hh"

namespace fs = std::filesystem;
using nectar::lint::Finding;
using nectar::lint::Options;

namespace {

bool
isSourceFile(const fs::path &p)
{
    static const std::vector<std::string> exts = {
        ".cc", ".hh", ".cpp", ".hpp", ".h", ".cxx",
    };
    return std::find(exts.begin(), exts.end(),
                     p.extension().string()) != exts.end();
}

bool
skippedDir(const fs::path &p)
{
    std::string name = p.filename().string();
    return name.empty() || name.front() == '.' ||
           name.rfind("build", 0) == 0 || name == "lint_corpus" ||
           name == "CMakeFiles" || name == "Testing";
}

void
collect(const fs::path &root, std::vector<std::string> &files)
{
    auto it = fs::recursive_directory_iterator(
        root, fs::directory_options::skip_permission_denied);
    for (auto end = fs::end(it); it != end; ++it) {
        if (it->is_directory()) {
            if (skippedDir(it->path()))
                it.disable_recursion_pending();
            continue;
        }
        if (it->is_regular_file() && isSourceFile(it->path()))
            files.push_back(it->path().string());
    }
}

int
usage()
{
    std::cerr
        << "usage: nectar-lint [--packet-path <substr>]... "
           "[--explain] <file-or-dir>...\n"
           "Checks nectar-sim determinism and ownership rules "
           "D1-D5; see DESIGN.md.\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    std::vector<std::string> files;
    bool explain = false;

    std::vector<std::string> args(argv + 1, argv + argc);
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        if (a == "--packet-path") {
            if (i + 1 >= args.size())
                return usage();
            opts.packetPathDirs.push_back(args[++i]);
        } else if (a == "--explain") {
            explain = true;
        } else if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else if (!a.empty() && a[0] == '-') {
            return usage();
        } else if (fs::is_directory(a)) {
            collect(a, files);
        } else if (fs::exists(a)) {
            files.push_back(a);
        } else {
            std::cerr << "nectar-lint: no such file: " << a << "\n";
            return 2;
        }
    }
    if (explain) {
        for (const char *r : {"D1", "D2", "D3", "D4", "D5", "A1"})
            std::cout << r << "  "
                      << nectar::lint::ruleDescription(r) << "\n";
        if (files.empty())
            return 0;
    }
    if (files.empty())
        return usage();

    std::sort(files.begin(), files.end());
    std::size_t nFindings = 0, nFilesWithFindings = 0;
    for (const auto &f : files) {
        std::vector<Finding> findings;
        try {
            findings = nectar::lint::lintFile(f, opts);
        } catch (const std::exception &e) {
            std::cerr << e.what() << "\n";
            return 2;
        }
        if (!findings.empty())
            ++nFilesWithFindings;
        for (const auto &fd : findings) {
            ++nFindings;
            std::cout << fd.file << ":" << fd.line << ": ["
                      << fd.rule << "] " << fd.message << "\n";
        }
    }
    std::cout << "nectar-lint: " << nFindings << " finding(s) in "
              << nFilesWithFindings << " of " << files.size()
              << " file(s)\n";
    return nFindings == 0 ? 0 : 1;
}
