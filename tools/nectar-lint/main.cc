/**
 * @file
 * nectar-lint command-line driver.
 *
 * Usage: nectar-lint [options] <file-or-dir>...
 *
 * Directories are scanned recursively for C++ sources; build trees,
 * dot-directories and the lint-corpus fixtures (which violate rules
 * on purpose) are skipped.  Files named explicitly are always
 * linted, corpus or not — that is how the corpus tests drive the
 * binary.
 *
 * With --graph-out, the whole-tree component access-graph pass
 * (graph.hh) also runs over every collected file under a src/
 * directory, emits D6/D8 findings, and writes partition_map.json;
 * --topo <file.topo> attaches the runtime clusters (one per HUB) and
 * the cross-cluster direct-mutation edge list the analysis gate
 * asserts is empty.
 *
 * Exit status: 0 clean, 1 findings, 2 usage or I/O error.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "graph.hh"
#include "lint.hh"
#include "topo/topofile.hh"

namespace fs = std::filesystem;
using nectar::lint::Finding;
using nectar::lint::Options;

namespace {

bool
isSourceFile(const fs::path &p)
{
    static const std::vector<std::string> exts = {
        ".cc", ".hh", ".cpp", ".hpp", ".h", ".cxx",
    };
    return std::find(exts.begin(), exts.end(),
                     p.extension().string()) != exts.end();
}

bool
skippedDir(const fs::path &p)
{
    std::string name = p.filename().string();
    return name.empty() || name.front() == '.' ||
           name.rfind("build", 0) == 0 || name == "lint_corpus" ||
           name == "CMakeFiles" || name == "Testing";
}

void
collect(const fs::path &root, std::vector<std::string> &files)
{
    auto it = fs::recursive_directory_iterator(
        root, fs::directory_options::skip_permission_denied);
    for (auto end = fs::end(it); it != end; ++it) {
        if (it->is_directory()) {
            if (skippedDir(it->path()))
                it.disable_recursion_pending();
            continue;
        }
        if (it->is_regular_file() && isSourceFile(it->path()))
            files.push_back(it->path().string());
    }
}

int
usage()
{
    std::cerr
        << "usage: nectar-lint [--packet-path <substr>]... "
           "[--explain]\n"
           "                   [--graph-out <json>] [--topo <file>] "
           "<file-or-dir>...\n"
           "Checks nectar-sim determinism and ownership rules "
           "D1-D8; see DESIGN.md.\n"
           "--graph-out runs the component access-graph pass "
           "(D6/D8) over the\n"
           "collected src/ files and writes the partition map; "
           "--topo attaches the\n"
           "runtime HUB clusters from a .topo fabric file.\n";
    return 2;
}

/** Convert a loaded fabric into the graph pass's summary form. */
nectar::lint::TopoSummary
summarize(const nectar::topo::TopologyDescription &d)
{
    nectar::lint::TopoSummary s;
    s.name = d.name;
    for (int h = 0; h < d.numHubs(); ++h)
        s.hubs.push_back(d.hubNameAt(h));
    int n = 0;
    for (const auto &c : d.cabs) {
        std::string name =
            c.name.empty() ? "cab" + std::to_string(n) : c.name;
        ++n;
        s.cabs.emplace_back(name, c.hub);
    }
    for (const auto &t : d.trunks)
        s.trunks.emplace_back(t.a, t.b);
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    std::vector<std::string> files;
    bool explain = false;
    std::string graphOut, topoPath;

    std::vector<std::string> args(argv + 1, argv + argc);
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        if (a == "--packet-path") {
            if (i + 1 >= args.size())
                return usage();
            opts.packetPathDirs.push_back(args[++i]);
        } else if (a == "--graph-out") {
            if (i + 1 >= args.size())
                return usage();
            graphOut = args[++i];
        } else if (a == "--topo") {
            if (i + 1 >= args.size())
                return usage();
            topoPath = args[++i];
        } else if (a == "--explain") {
            explain = true;
        } else if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else if (!a.empty() && a[0] == '-') {
            return usage();
        } else if (fs::is_directory(a)) {
            collect(a, files);
        } else if (fs::exists(a)) {
            files.push_back(a);
        } else {
            std::cerr << "nectar-lint: no such file: " << a << "\n";
            return 2;
        }
    }
    if (explain) {
        for (const char *r :
             {"D1", "D2", "D3", "D4", "D5", "D6", "D7", "D8", "A1"})
            std::cout << r << "  "
                      << nectar::lint::ruleDescription(r) << "\n";
        if (files.empty())
            return 0;
    }
    if (files.empty())
        return usage();

    std::sort(files.begin(), files.end());
    std::size_t nFindings = 0, nFilesWithFindings = 0;
    for (const auto &f : files) {
        std::vector<Finding> findings;
        try {
            findings = nectar::lint::lintFile(f, opts);
        } catch (const std::exception &e) {
            std::cerr << e.what() << "\n";
            return 2;
        }
        if (!findings.empty())
            ++nFilesWithFindings;
        for (const auto &fd : findings) {
            ++nFindings;
            std::cout << fd.file << ":" << fd.line << ": ["
                      << fd.rule << "] " << fd.message << "\n";
        }
    }

    if (!graphOut.empty()) {
        std::vector<nectar::lint::SourceFile> srcs;
        for (const auto &f : files) {
            if (f.find("src/") == std::string::npos)
                continue;
            std::ifstream in(f, std::ios::binary);
            if (!in) {
                std::cerr << "nectar-lint: cannot read " << f
                          << "\n";
                return 2;
            }
            std::ostringstream ss;
            ss << in.rdbuf();
            srcs.push_back({f, ss.str()});
        }
        nectar::lint::GraphOptions gopts;
        nectar::lint::GraphResult g =
            nectar::lint::analyzeGraph(srcs, gopts);
        for (const auto &fd : g.findings) {
            ++nFindings;
            std::cout << fd.file << ":" << fd.line << ": ["
                      << fd.rule << "] " << fd.message << "\n";
        }

        nectar::lint::TopoSummary topo;
        bool haveTopo = false;
        if (!topoPath.empty()) {
            try {
                topo = summarize(
                    nectar::topo::loadTopologyFile(topoPath));
                haveTopo = true;
            } catch (const std::exception &e) {
                std::cerr << e.what() << "\n";
                return 2;
            }
        }
        std::ofstream out(graphOut, std::ios::binary);
        if (!out) {
            std::cerr << "nectar-lint: cannot write " << graphOut
                      << "\n";
            return 2;
        }
        out << nectar::lint::graphJson(
            g, gopts, haveTopo ? &topo : nullptr);
        std::size_t direct = 0;
        for (const auto &e : g.edges)
            if (e.kind == "direct-mutation")
                ++direct;
        std::cout << "nectar-lint: graph: " << g.components.size()
                  << " component(s), " << g.edges.size()
                  << " edge(s), " << direct
                  << " direct cross-partition mutation(s) -> "
                  << graphOut << "\n";
    }

    std::cout << "nectar-lint: " << nFindings << " finding(s) in "
              << nFilesWithFindings << " of " << files.size()
              << " file(s)\n";
    return nFindings == 0 ? 0 : 1;
}
