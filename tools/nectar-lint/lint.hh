/**
 * @file
 * nectar-lint: domain-rule static analysis for the nectar simulator.
 *
 * The simulator's trustworthiness rests on invariants that ordinary
 * C++ tooling cannot see: seeded determinism, the zero-copy
 * Buffer/PacketView ownership discipline on the packet path, and the
 * lifetime rules of deferred events.  nectar-lint is a small lexical
 * analyzer (comment/string-aware token scanning, not a full parser)
 * that enforces them mechanically:
 *
 *  - D1  no wall-clock time or unseeded randomness
 *        (std::random_device, rand()/srand(), system_clock, ...);
 *        all stochastic behaviour must draw from sim::Random.
 *  - D2  no iteration over std::unordered_{map,set} in simulation
 *        code: hash order is unspecified, so iterating one to
 *        schedule events or mutate sim state diverges across runs.
 *  - D3  no raw payload copies (memcpy, new[], owning
 *        std::vector<uint8_t>) inside the packet path
 *        (phys/hub/datalink/transport/cab); payload bytes flow
 *        through sim::Buffer/PacketView and are counted by
 *        sim::copyStats().
 *  - D4  no by-reference lambda captures passed into schedule():
 *        a deferred event may outlive the captured frame.
 *  - D5  no bare integer time literals at schedule sites; use named
 *        sim::ticks constants (e.g. 5 * ticks::us) so units are
 *        explicit.
 *  - D7  no mutable global/namespace-scope static state in
 *        simulation code: state that no component owns is invisible
 *        to any partitioning of the component graph, so per-thread
 *        cluster partitions would share it unsynchronized.
 *
 * Two further rules, D6 (direct cross-component state mutation off
 * the mediated-call allowlist) and D8 (foreign references to another
 * component's internals stored in fields), ride on the whole-tree
 * component access graph; see graph.hh.
 *
 * Violations are suppressed with an annotation carrying a
 * justification (rule A1 rejects annotations without one):
 *
 *     riskyCall();  // nectar-lint: copy-ok CAB memory model, not payload
 *
 * A line annotation covers its own line, and the following line when
 * the annotation stands alone on its line.  A file-wide waiver uses
 * "nectar-lint-file:" with the same tag grammar:
 *
 *     // nectar-lint-file: capture-ok test frames outlive eq.run()
 *
 * Tags: wallclock-ok (D1), ordered-ok (D2), copy-ok (D3),
 * capture-ok (D4), raw-ticks-ok (D5), mediated-ok (D6),
 * global-ok (D7), foreign-ref-ok (D8).
 */

#pragma once

#include <string>
#include <vector>

namespace nectar::lint {

/** One rule violation (or A1 annotation error). */
struct Finding
{
    std::string rule;    ///< "D1".."D8", or "A1" (bad annotation).
    std::string file;    ///< Path as passed to the linter.
    int line = 0;        ///< 1-based line number.
    std::string message; ///< Human-readable explanation.
};

/** Linter configuration. */
struct Options
{
    /**
     * Path substrings marking the zero-copy packet path; D3 applies
     * only to files whose path contains one of these.
     */
    std::vector<std::string> packetPathDirs = {
        "/phys/", "/hub/", "/datalink/", "/transport/", "/cab/",
    };

    /**
     * Path substrings marking simulation code; D7 applies only to
     * files whose path contains one of these (tools and tests may
     * keep process-wide state).
     */
    std::vector<std::string> globalStateDirs = {"src/"};
};

/** One-line description of a rule id ("D1".."D8", "A1"). */
const char *ruleDescription(const std::string &rule);

/**
 * Lint @p text as the contents of @p path.
 *
 * @return Findings sorted by line, deduplicated by (rule, line).
 */
std::vector<Finding> lintSource(const std::string &path,
                                const std::string &text,
                                const Options &opts = {});

/** Read @p path and lint it.  @throws std::runtime_error on I/O error. */
std::vector<Finding> lintFile(const std::string &path,
                              const Options &opts = {});

} // namespace nectar::lint
