/**
 * @file
 * The component access-graph pass: whole-tree partition-safety
 * analysis for the parallel simulation core.
 *
 * The planned threaded engine partitions the component graph into
 * per-thread HUB/CAB-cluster partitions (ROADMAP).  That is only
 * sound if no component mutates another partition's state through a
 * direct synchronous call that bypasses the event queue.  This pass
 * makes the property mechanical:
 *
 *  - Pass 1 indexes every class in the tree (fields, methods,
 *    accessors, inheritance) and computes the sim::Component closure;
 *    each component is assigned a co-location role from the layer its
 *    file lives in (site = cab/cabos/datalink/transport/node/inet/
 *    baseline/nectarine, hub = hub, wire = phys, engine = sim).  A
 *    thread partition is a HUB plus its CABs, so components sharing a
 *    role are co-located by construction (a CAB's datalink never
 *    touches another CAB's board), while cross-role edges are exactly
 *    the ones that may cross a partition boundary.
 *
 *  - Pass 2 scans every member-function body (inline and out-of-line)
 *    of a component class, resolves receiver chains like
 *    `_kernel.board().cpu().chargeThen(...)` through fields, locals,
 *    parameters and accessors, and classifies every inter-component
 *    edge:
 *
 *      owned            target is inside the source's ownership
 *                       aggregate (value / unique_ptr fields), so it
 *                       can never be split across partitions;
 *      mediated         the call lands on a sanctioned mediated
 *                       surface (FiberLink::send/sendStolen,
 *                       FiberSink::fiberDeliver — the wire
 *                       chokepoints that already serialize through
 *                       the event queue), or carries a `mediated-ok`
 *                       annotation;
 *      co-located       same role, hence same partition;
 *      read             const access: no state crosses;
 *      direct-mutation  none of the above — rule D6;
 *      foreign-ref      a pointer/reference to another component's
 *                       internals stored in a field — rule D8.
 *
 * Rules emitted here:
 *
 *  - D6  direct cross-component state mutation off the mediated-call
 *        allowlist (annotation tag: mediated-ok);
 *  - D8  foreign references to another component's internals stored
 *        in fields and retained across ticks (chains of two or more
 *        segments through a component; whole-component wiring like
 *        `tx = &link` is the datalink of the graph itself and passes)
 *        (annotation tag: foreign-ref-ok).
 *
 * graphJson() serializes the result deterministically (sorted maps,
 * no pointers or timestamps) as partition_map.json, the artifact the
 * parallel core will consume to derive thread partitions.  With a
 * TopoSummary attached, the JSON additionally lists the runtime
 * clusters (each HUB plus its CABs) and the cross-cluster
 * direct-mutation edges — the list the `ctest -L analysis` gate
 * asserts is empty.
 */

#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint.hh"

namespace nectar::lint {

/** One data member of an indexed class. */
struct FieldInfo
{
    enum Kind { value, ref, ptr, unique, vecUnique };

    std::string name;
    std::string type; ///< Bare class name, "" when not indexed.
    Kind kind = value;
};

/** One member function of an indexed class. */
struct MethodInfo
{
    std::string name;
    bool isConst = false;
    bool isPublic = false;
    /** Bare name of the returned class when indexed, else "". */
    std::string returnsType;
};

/** One indexed class (component, interface, or plain aggregate). */
struct ClassInfo
{
    std::string name;      ///< Bare class name.
    std::string qualified; ///< With enclosing namespaces when known.
    std::string file;
    int line = 0;
    std::vector<std::string> bases; ///< Bare base-class names.
    std::vector<FieldInfo> fields;
    std::vector<MethodInfo> methods;
    bool component = false; ///< In the sim::Component closure.
    bool interface = false; ///< Non-component base of a component.
    std::string role;       ///< site | hub | wire | engine | control.
};

/** One classified inter-component access edge. */
struct AccessEdge
{
    std::string from;   ///< Source component class.
    std::string to;     ///< Target component class.
    std::string via;    ///< First chain segment (field/accessor).
    std::string member; ///< Member accessed on the target.
    std::string kind;   ///< owned | mediated | co-located | read |
                        ///< direct-mutation | foreign-ref.
    bool mutation = false;
    bool annotated = false; ///< Sanctioned by an annotation.
    std::string file;
    int line = 0;
};

/** Graph-pass configuration. */
struct GraphOptions
{
    /**
     * Sanctioned mediated-call surfaces, as (class, method) pairs.
     * Matching considers the receiver class and its bases.  The
     * defaults are the wire chokepoints: everything crossing a fiber
     * is serialized through the event queue by FiberLink.
     */
    std::vector<std::pair<std::string, std::string>>
        mediatedAllowlist = {
            {"FiberLink", "send"},
            {"FiberLink", "sendStolen"},
            {"FiberSink", "fiberDeliver"},
        };

    /**
     * Layer directory (the segment after "src/") to co-location
     * role.  Unlisted directories map to "control".
     */
    std::map<std::string, std::string> roleOfDir = {
        {"cab", "site"},       {"cabos", "site"},
        {"datalink", "site"},  {"transport", "site"},
        {"node", "site"},      {"inet", "site"},
        {"baseline", "site"},  {"nectarine", "site"},
        {"hub", "hub"},        {"phys", "wire"},
        {"sim", "engine"},
    };
};

/** One input file for the analysis. */
struct SourceFile
{
    std::string path;
    std::string text;
};

/** Result of the two-pass analysis. */
struct GraphResult
{
    /** Graph nodes: components and their interfaces, by bare name. */
    std::map<std::string, ClassInfo> components;
    /** All classified edges, sorted for determinism. */
    std::vector<AccessEdge> edges;
    /** D6/D8 findings surviving annotation suppression, sorted. */
    std::vector<Finding> findings;
};

/** Run both passes over @p files (typically everything under src/). */
GraphResult analyzeGraph(const std::vector<SourceFile> &files,
                         const GraphOptions &opts = {});

/**
 * Loaded-topology summary for the partition map, kept free of topo
 * types so nectar_lint_core stays standalone; the CLI converts a
 * topo::TopologyDescription into one.
 */
struct TopoSummary
{
    std::string name;
    std::vector<std::string> hubs;
    /** (cab name, owning hub index). */
    std::vector<std::pair<std::string, int>> cabs;
    /** (hub a, hub b) trunk endpoints. */
    std::vector<std::pair<int, int>> trunks;
};

/**
 * Serialize @p g as partition_map.json: byte-deterministic for a
 * given input set (sorted keys, no pointers, no timestamps).  With
 * @p topo, adds the runtime clusters (one per HUB) and the
 * cross-cluster direct-mutation edge list the analysis gate asserts
 * is empty.
 */
std::string graphJson(const GraphResult &g, const GraphOptions &opts,
                      const TopoSummary *topo = nullptr);

} // namespace nectar::lint
