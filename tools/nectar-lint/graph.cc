#include "graph.hh"

#include <algorithm>
#include <cctype>
#include <functional>
#include <regex>
#include <sstream>

#include "source.hh"

namespace nectar::lint {

namespace {

// ====================================================================
// Pass-1 support: class indexing.
// ====================================================================

/** A parsed member-function body awaiting the edge scan. */
struct Body
{
    std::string cls;     ///< Bare class name of `this`.
    std::size_t fileIdx; ///< Index into the prepared-file table.
    std::size_t paramsBegin = 0, paramsEnd = 0; ///< Inside the parens.
    std::size_t begin = 0, end = 0;             ///< Inside the braces.
    std::size_t initBegin = 0, initEnd = 0;     ///< Ctor init list.
};

/** Per-file prepared state shared by both passes. */
struct PreparedFile
{
    std::string path;
    Prepared prep;
    Suppressions sup;
};

/** Last identifier segment of a (possibly qualified) type name. */
std::string
bareName(std::string t)
{
    // Strip template arguments, then namespace qualifiers.
    auto lt = t.find('<');
    if (lt != std::string::npos)
        t.erase(lt);
    auto q = t.rfind("::");
    if (q != std::string::npos)
        t.erase(0, q + 2);
    // Trim whitespace and declarator punctuation.
    while (!t.empty() &&
           !identChar(t.back()))
        t.pop_back();
    auto b = t.find_last_not_of(
        "abcdefghijklmnopqrstuvwxyz"
        "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_");
    if (b != std::string::npos)
        t.erase(0, b + 1);
    return t;
}

/** Skip forward past a balanced bracket if @p i sits on one. */
std::size_t
skipBracket(const std::string &code, std::size_t i)
{
    std::size_t e = matchBracket(code, i);
    return e == std::string::npos ? code.size() : e;
}

/** Advance to the ';' ending a declaration, skipping nesting. */
std::size_t
skipToSemi(const std::string &code, std::size_t i)
{
    while (i < code.size()) {
        char c = code[i];
        if (c == ';')
            return i + 1;
        if (c == '(' || c == '[' || c == '{') {
            i = skipBracket(code, i);
            continue;
        }
        ++i;
    }
    return i;
}

bool
wordAt(const std::string &code, std::size_t i, const char *w)
{
    std::size_t n = std::char_traits<char>::length(w);
    if (code.compare(i, n, w) != 0)
        return false;
    if (i > 0 && identChar(code[i - 1]))
        return false;
    return i + n >= code.size() || !identChar(code[i + n]);
}

/** Read the identifier starting at @p i (must be an ident char). */
std::string
identAt(const std::string &code, std::size_t i)
{
    std::size_t j = i;
    while (j < code.size() && identChar(code[j]))
        ++j;
    return code.substr(i, j - i);
}

/** Identifier ending at (and including) position @p i, or "". */
std::string
identEndingAt(const std::string &code, std::size_t i)
{
    if (!identChar(code[i]))
        return {};
    std::size_t b = i;
    while (b > 0 && identChar(code[b - 1]))
        --b;
    return code.substr(b, i - b + 1);
}

/** Everything the indexer knows, plus lookup tables. */
struct Index
{
    std::vector<PreparedFile> files;
    /** All indexed classes by bare name (first definition wins). */
    std::map<std::string, ClassInfo> classes;
    /** Inline + out-of-line member bodies. */
    std::vector<Body> bodies;
    /** Merged (own + inherited) field lookup per class. */
    std::map<std::string, std::map<std::string, const FieldInfo *>>
        fieldLookup;
    /** Merged (own + inherited) method lookup per class. */
    std::map<std::string, std::map<std::string, const MethodInfo *>>
        methodLookup;
    /** Ownership closure: owner -> transitively owned classes. */
    std::map<std::string, std::set<std::string>> owns;

    const ClassInfo *
    cls(const std::string &name) const
    {
        auto it = classes.find(name);
        return it == classes.end() ? nullptr : &it->second;
    }

    bool
    isNode(const std::string &name) const
    {
        const ClassInfo *c = cls(name);
        return c && (c->component || c->interface);
    }
};

/**
 * Parse one class body: access sections, fields, methods, inline
 * member bodies.  @p open is the position of the opening brace.
 */
void
parseClassBody(Index &ix, ClassInfo &ci, std::size_t fileIdx,
               std::size_t open, bool isStruct)
{
    const std::string &code = ix.files[fileIdx].prep.code;
    std::size_t close = matchBracket(code, open);
    if (close == std::string::npos)
        return;
    bool isPublic = isStruct;

    std::size_t i = open + 1;
    while (i < close - 1) {
        i = skipWs(code, i);
        if (i >= close - 1)
            break;
        char c = code[i];

        // Access labels.
        bool label = false;
        for (const char *w : {"public", "protected", "private"}) {
            if (wordAt(code, i, w)) {
                std::size_t k = skipWs(code, i + identAt(code, i)
                                                   .size());
                if (k < code.size() && code[k] == ':' &&
                    (k + 1 >= code.size() || code[k + 1] != ':')) {
                    isPublic = std::string(w) == "public";
                    i = k + 1;
                    label = true;
                }
            }
        }
        if (label)
            continue;

        // Declarations we skip outright.
        if (wordAt(code, i, "using") || wordAt(code, i, "typedef") ||
            wordAt(code, i, "friend")) {
            i = skipToSemi(code, i);
            continue;
        }
        if (wordAt(code, i, "template")) {
            std::size_t lt = code.find('<', i);
            i = lt == std::string::npos ? i + 8
                                        : skipBracket(code, lt);
            continue;
        }
        // Nested type definitions: the global indexer picks them up;
        // here just skip past (their braces, then the ';').
        if (wordAt(code, i, "class") || wordAt(code, i, "struct") ||
            wordAt(code, i, "union") || wordAt(code, i, "enum")) {
            i = skipToSemi(code, i);
            continue;
        }
        if (c == ';') {
            ++i;
            continue;
        }
        if (c == '[') { // attribute
            i = skipBracket(code, i);
            continue;
        }
        if (c == '~') { // destructor
            std::size_t p = code.find('(', i);
            if (p == std::string::npos || p > close)
                break;
            std::size_t pe = skipBracket(code, p);
            std::size_t k = skipWs(code, pe);
            while (k < close &&
                   (wordAt(code, k, "override") ||
                    wordAt(code, k, "noexcept") ||
                    wordAt(code, k, "final")))
                k = skipWs(code, k + identAt(code, k).size());
            if (k < close && code[k] == '{') {
                ix.bodies.push_back({ci.name, fileIdx, p + 1, pe - 1,
                                     k + 1, skipBracket(code, k) - 1,
                                     0, 0});
                i = skipBracket(code, k);
            } else {
                i = skipToSemi(code, k);
            }
            continue;
        }

        // Scan this declaration for the earliest of ';', '=', '{',
        // '(' — skipping template argument lists.
        std::size_t declBegin = i;
        std::size_t j = i;
        char term = '\0';
        bool isOperator = false;
        while (j < close - 1) {
            char d = code[j];
            if (d == ';' || d == '=' || d == '{' || d == '(') {
                term = d;
                break;
            }
            if (d == '<' && j > 0 && identChar(code[j - 1])) {
                j = skipBracket(code, j);
                continue;
            }
            if (identChar(d) && wordAt(code, j, "operator")) {
                isOperator = true;
                break;
            }
            ++j;
        }
        if (isOperator || term == '\0') {
            // Skip an operator (possibly with an inline body) or an
            // unparsable tail.
            std::size_t k = j;
            while (k < close - 1 && code[k] != '{' && code[k] != ';')
                k = (code[k] == '(') ? skipBracket(code, k) : k + 1;
            i = (k < close - 1 && code[k] == '{')
                    ? skipBracket(code, k)
                    : k + 1;
            continue;
        }

        if (term == '(') {
            // Method (or function-pointer field).
            std::size_t nx = skipWs(code, j + 1);
            if (nx < code.size() &&
                (code[nx] == '*' || code[nx] == '&')) {
                // `ret (*name)(args)` — a function-pointer field.
                std::size_t inner = skipWs(code, nx + 1);
                FieldInfo f;
                f.name = identChar(code[inner]) ? identAt(code, inner)
                                                : std::string();
                f.kind = FieldInfo::ptr;
                if (!f.name.empty())
                    ci.fields.push_back(f);
                i = skipToSemi(code, j);
                continue;
            }
            std::size_t nameEnd = prevNonWs(code, j);
            std::string name = nameEnd == std::string::npos
                                   ? std::string()
                                   : identEndingAt(code, nameEnd);
            if (name.empty()) {
                i = skipToSemi(code, j);
                continue;
            }
            std::size_t pe = skipBracket(code, j);
            // Post-tokens: const / noexcept / override / final /
            // trailing return, then '{', ';', '=' or ':' (ctor).
            bool isConst = false;
            std::size_t k = skipWs(code, pe);
            while (k < close - 1) {
                if (wordAt(code, k, "const")) {
                    isConst = true;
                    k = skipWs(code, k + 5);
                } else if (wordAt(code, k, "noexcept") ||
                           wordAt(code, k, "override") ||
                           wordAt(code, k, "final")) {
                    k = skipWs(code, k + identAt(code, k).size());
                    if (k < close - 1 && code[k] == '(')
                        k = skipWs(code, skipBracket(code, k));
                } else if (code[k] == '-' && k + 1 < close &&
                           code[k + 1] == '>') {
                    k = skipWs(code, k + 2);
                    while (k < close - 1 && code[k] != '{' &&
                           code[k] != ';')
                        k = identChar(code[k])
                                ? k + identAt(code, k).size()
                                : (code[k] == '<'
                                       ? skipBracket(code, k)
                                       : k + 1);
                } else {
                    break;
                }
            }
            // Return type: the head before the name, specifiers
            // stripped.
            std::string head =
                code.substr(declBegin, j - declBegin);
            head = head.substr(0, head.rfind(name));
            static const std::regex spec(
                R"(\b(virtual|static|inline|constexpr|explicit)\b)");
            head = std::regex_replace(head, spec, " ");
            std::string retBare = bareName(head);

            MethodInfo m;
            m.name = name;
            m.isConst = isConst;
            m.isPublic = isPublic;
            m.returnsType = retBare; // filtered to indexed later
            ci.methods.push_back(m);

            std::size_t initB = 0, initE = 0;
            if (k < close - 1 && code[k] == ':' &&
                (k + 1 >= close || code[k + 1] != ':')) {
                // Ctor init list: items `name(args)` / `name{args}`.
                initB = k + 1;
                std::size_t p = k + 1;
                while (p < close - 1) {
                    p = skipWs(code, p);
                    while (p < close - 1 &&
                           (identChar(code[p]) || code[p] == ':'))
                        ++p;
                    p = skipWs(code, p);
                    if (p < close - 1 &&
                        (code[p] == '(' || code[p] == '{'))
                        p = skipWs(code, skipBracket(code, p));
                    if (p < close - 1 && code[p] == ',') {
                        ++p;
                        continue;
                    }
                    break;
                }
                initE = p;
                k = p;
            }
            if (k < close - 1 && code[k] == '{') {
                ix.bodies.push_back({ci.name, fileIdx, j + 1, pe - 1,
                                     k + 1, skipBracket(code, k) - 1,
                                     initB, initE});
                i = skipBracket(code, k);
            } else if (k < close - 1 && code[k] == '=') {
                i = skipToSemi(code, k); // = 0 / default / delete
            } else {
                i = (k < close - 1 && code[k] == ';') ? k + 1
                                                      : skipToSemi(
                                                            code, k);
            }
            continue;
        }

        // Field declaration (term is ';', '=' or '{').
        std::string declText =
            code.substr(declBegin, j - declBegin);
        std::size_t nameEnd = prevNonWs(code, j);
        std::string fname = nameEnd == std::string::npos
                                ? std::string()
                                : identEndingAt(code, nameEnd);
        if (!fname.empty()) {
            std::string typeText =
                declText.substr(0, declText.rfind(fname));
            FieldInfo f;
            f.name = fname;
            if (typeText.find('&') != std::string::npos)
                f.kind = FieldInfo::ref;
            else if (typeText.find('*') != std::string::npos)
                f.kind = FieldInfo::ptr;
            if (typeText.find("unique_ptr") != std::string::npos) {
                f.kind =
                    typeText.find("vector") != std::string::npos
                        ? FieldInfo::vecUnique
                        : FieldInfo::unique;
                // Innermost template argument carries the type.
                auto lt = typeText.rfind('<');
                if (lt != std::string::npos)
                    typeText = typeText.substr(lt + 1);
            }
            f.type = bareName(typeText);
            ci.fields.push_back(f);
        }
        i = (term == ';') ? j + 1 : skipToSemi(code, j);
    }
}

/** Pass 1a: find every class/struct definition in @p fileIdx. */
void
indexFile(Index &ix, std::size_t fileIdx)
{
    const std::string &code = ix.files[fileIdx].prep.code;
    static const std::regex def(R"(\b(class|struct)\s+([A-Za-z_]\w*))");
    std::string ns; // innermost namespace seen (for `qualified`)
    static const std::regex nsRe(R"(\bnamespace\s+([\w:]+)\s*\{)");
    std::smatch nm;
    std::string sub = code;
    if (std::regex_search(sub, nm, nsRe))
        ns = nm[1].str();

    for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                        def);
         it != std::sregex_iterator(); ++it) {
        std::size_t pos = static_cast<std::size_t>(it->position());
        // `enum class` is not a class definition.
        std::size_t pv = prevNonWs(code, pos);
        if (pv != std::string::npos) {
            std::string prev = identEndingAt(code, pv);
            if (prev == "enum" || prev == "friend")
                continue;
        }
        std::string name = (*it)[2].str();
        std::size_t i =
            skipWs(code, pos + it->str().size());
        if (i < code.size() && wordAt(code, i, "final"))
            i = skipWs(code, i + 5);
        std::vector<std::string> bases;
        if (i < code.size() && code[i] == ':' &&
            (i + 1 >= code.size() || code[i + 1] != ':')) {
            std::size_t ob = code.find('{', i);
            if (ob == std::string::npos)
                continue;
            std::string blist = code.substr(i + 1, ob - i - 1);
            static const std::regex spec(
                R"(\b(public|protected|private|virtual)\b)");
            blist = std::regex_replace(blist, spec, " ");
            std::stringstream ss(blist);
            std::string b;
            while (std::getline(ss, b, ','))
                if (!bareName(b).empty())
                    bases.push_back(bareName(b));
            i = ob;
        }
        if (i >= code.size() || code[i] != '{')
            continue; // forward declaration
        bool isStruct = (*it)[1].str() == "struct";

        if (ix.classes.count(name))
            continue; // first definition wins
        ClassInfo ci;
        ci.name = name;
        ci.qualified = ns.empty() ? name : ns + "::" + name;
        ci.file = ix.files[fileIdx].path;
        ci.line = lineOf(code, pos);
        ci.bases = bases;
        parseClassBody(ix, ci, fileIdx, i, isStruct);
        ix.classes.emplace(name, std::move(ci));
    }
}

/** Pass 1b: out-of-line `Class::method(...) { ... }` bodies. */
void
indexOutOfLine(Index &ix, std::size_t fileIdx)
{
    const std::string &code = ix.files[fileIdx].prep.code;
    static const std::regex def(
        R"(\b([A-Za-z_]\w*)\s*::\s*(~?[A-Za-z_]\w*)\s*\()");
    std::vector<std::pair<std::size_t, std::smatch>> hits;
    for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                        def);
         it != std::sregex_iterator(); ++it)
        hits.emplace_back(static_cast<std::size_t>(it->position()),
                          *it);

    // Accept only matches at namespace scope (depth counted over
    // non-namespace braces must be zero).
    std::size_t h = 0;
    int depth = 0;
    std::vector<bool> nsBrace;
    for (std::size_t i = 0; i < code.size() && h < hits.size();
         ++i) {
        char c = code[i];
        if (c == '{') {
            std::size_t pv = prevNonWs(code, i);
            bool isNs = false;
            if (pv != std::string::npos) {
                // `namespace {`, `namespace x {`, `namespace a::b {`
                std::size_t b = pv + 1;
                while (b > 0 &&
                       (identChar(code[b - 1]) || code[b - 1] == ':'))
                    --b;
                std::string tok = code.substr(b, pv - b + 1);
                if (tok == "namespace") {
                    isNs = true;
                } else if (!tok.empty() && b > 0) {
                    std::size_t pw = prevNonWs(code, b);
                    if (pw != std::string::npos &&
                        identEndingAt(code, pw) == "namespace")
                        isNs = true;
                }
            }
            nsBrace.push_back(isNs);
            if (!isNs)
                ++depth;
        } else if (c == '}') {
            if (!nsBrace.empty()) {
                if (!nsBrace.back())
                    --depth;
                nsBrace.pop_back();
            }
        }
        while (h < hits.size() && hits[h].first == i) {
            if (depth == 0) {
                const std::smatch &m = hits[h].second;
                std::string cls = m[1].str();
                if (ix.classes.count(cls)) {
                    std::size_t op =
                        hits[h].first + m.str().size() - 1;
                    std::size_t pe = skipBracket(code, op);
                    std::size_t k = skipWs(code, pe);
                    bool bad = false;
                    std::size_t initB = 0, initE = 0;
                    while (k < code.size() && !bad) {
                        if (wordAt(code, k, "const") ||
                            wordAt(code, k, "noexcept"))
                            k = skipWs(code,
                                       k + identAt(code, k).size());
                        else if (code[k] == ':' &&
                                 (k + 1 >= code.size() ||
                                  code[k + 1] != ':')) {
                            initB = k + 1;
                            std::size_t p = k + 1;
                            while (p < code.size()) {
                                p = skipWs(code, p);
                                while (p < code.size() &&
                                       (identChar(code[p]) ||
                                        code[p] == ':'))
                                    ++p;
                                p = skipWs(code, p);
                                if (p < code.size() &&
                                    (code[p] == '(' ||
                                     code[p] == '{'))
                                    p = skipWs(
                                        code, skipBracket(code, p));
                                if (p < code.size() &&
                                    code[p] == ',') {
                                    ++p;
                                    continue;
                                }
                                break;
                            }
                            initE = p;
                            k = p;
                            break;
                        } else {
                            break;
                        }
                    }
                    if (k < code.size() && code[k] == '{') {
                        ix.bodies.push_back(
                            {cls, fileIdx, op + 1, pe - 1, k + 1,
                             skipBracket(code, k) - 1, initB,
                             initE});
                    }
                }
            }
            ++h;
        }
    }
}

/** Mark the Component closure, interfaces, roles; merge lookups. */
void
finalizeIndex(Index &ix, const GraphOptions &opts)
{
    // Component closure, seeded on the class named Component.
    bool changed = ix.classes.count("Component") > 0;
    if (changed)
        ix.classes.at("Component").component = true;
    while (changed) {
        changed = false;
        for (auto &[name, ci] : ix.classes) {
            if (ci.component)
                continue;
            for (const auto &b : ci.bases) {
                auto it = ix.classes.find(b);
                if (it != ix.classes.end() &&
                    it->second.component) {
                    ci.component = true;
                    changed = true;
                }
            }
        }
    }
    // Interfaces: non-component bases of components.
    for (auto &[name, ci] : ix.classes)
        if (ci.component)
            for (const auto &b : ci.bases) {
                auto it = ix.classes.find(b);
                if (it != ix.classes.end() &&
                    !it->second.component)
                    it->second.interface = true;
            }

    // Roles from the layer directory.
    for (auto &[name, ci] : ix.classes) {
        ci.role = "control";
        auto s = ci.file.rfind("src/");
        if (s != std::string::npos) {
            std::size_t b = s + 4;
            auto e = ci.file.find('/', b);
            if (e != std::string::npos) {
                auto it =
                    opts.roleOfDir.find(ci.file.substr(b, e - b));
                if (it != opts.roleOfDir.end())
                    ci.role = it->second;
            }
        }
    }

    // Field types and method return types: keep only indexed names.
    for (auto &[name, ci] : ix.classes) {
        for (auto &f : ci.fields)
            if (!ix.classes.count(f.type))
                f.type.clear();
        for (auto &m : ci.methods)
            if (!ix.classes.count(m.returnsType))
                m.returnsType.clear();
    }

    // Merged lookups (own members shadow inherited ones).
    for (auto &[name, ci] : ix.classes) {
        auto &fl = ix.fieldLookup[name];
        auto &ml = ix.methodLookup[name];
        std::set<std::string> seen;
        std::function<void(const std::string &)> add =
            [&](const std::string &cn) {
                if (!seen.insert(cn).second)
                    return;
                auto it = ix.classes.find(cn);
                if (it == ix.classes.end())
                    return;
                for (const auto &f : it->second.fields)
                    fl.emplace(f.name, &f);
                for (const auto &m : it->second.methods)
                    ml.emplace(m.name, &m);
                for (const auto &b : it->second.bases)
                    add(b);
            };
        add(name);
    }

    // Ownership closure over value / unique_ptr fields of nodes.
    for (auto &[name, ci] : ix.classes) {
        if (!(ci.component || ci.interface))
            continue;
        for (const auto &f : ci.fields)
            if (!f.type.empty() && ix.isNode(f.type) &&
                (f.kind == FieldInfo::value ||
                 f.kind == FieldInfo::unique ||
                 f.kind == FieldInfo::vecUnique))
                ix.owns[name].insert(f.type);
    }
    changed = true;
    while (changed) {
        changed = false;
        for (auto &[owner, set] : ix.owns) {
            std::set<std::string> next = set;
            for (const auto &o : set) {
                auto it = ix.owns.find(o);
                if (it != ix.owns.end())
                    for (const auto &oo : it->second)
                        next.insert(oo);
            }
            if (next.size() != set.size()) {
                set = std::move(next);
                changed = true;
            }
        }
    }
}

// ====================================================================
// Pass 2: chain resolution and edge classification.
// ====================================================================

/** One `a.b().c` chain segment. */
struct Seg
{
    std::string name;
    bool isCall = false;
    std::size_t pos = 0; ///< Name position in the file's code.
};

/** Parse a member-access chain starting at @p i (an ident char). */
std::vector<Seg>
parseChain(const std::string &code, std::size_t i,
           std::size_t limit, std::size_t &endOut)
{
    std::vector<Seg> segs;
    std::size_t p = i;
    while (p < limit && identChar(code[p]) &&
           !std::isdigit(static_cast<unsigned char>(code[p]))) {
        Seg s;
        s.pos = p;
        s.name = identAt(code, p);
        std::size_t k = skipWs(code, p + s.name.size());
        if (k < limit && code[k] == '(') {
            s.isCall = true;
            k = skipWs(code, skipBracket(code, k));
        }
        segs.push_back(std::move(s));
        if (k + 1 < limit && code[k] == '-' && code[k + 1] == '>')
            p = skipWs(code, k + 2);
        else if (k < limit && code[k] == '.' &&
                 (k + 1 >= limit || code[k + 1] != '.'))
            p = skipWs(code, k + 1);
        else {
            endOut = k;
            return segs;
        }
    }
    endOut = p;
    return segs;
}

/** True when an assignment / increment follows position @p k. */
bool
assignFollows(const std::string &code, std::size_t k)
{
    k = skipWs(code, k);
    if (k >= code.size())
        return false;
    char c = code[k];
    char n = k + 1 < code.size() ? code[k + 1] : '\0';
    if (c == '=' && n != '=')
        return true;
    if ((c == '+' || c == '-' || c == '*' || c == '/' || c == '%' ||
         c == '|' || c == '&' || c == '^') &&
        n == '=')
        return true;
    if ((c == '+' && n == '+') || (c == '-' && n == '-'))
        return true;
    if ((c == '<' && n == '<' && k + 2 < code.size() &&
         code[k + 2] == '=') ||
        (c == '>' && n == '>' && k + 2 < code.size() &&
         code[k + 2] == '='))
        return true;
    return false;
}

/** Outcome of resolving a chain against the index. */
struct ResolvedChain
{
    const ClassInfo *target = nullptr; ///< Last component reached.
    std::string member;  ///< Member leaving the component.
    std::string via;     ///< First chain segment.
    bool mutation = false;
    bool implicitSelf = false; ///< Base object is `this` itself.
    std::size_t pos = 0; ///< Chain start (for the line number).
};

/**
 * Resolve @p segs in the context of @p self's body.
 * @p locals maps local/param names to bare class names.
 */
ResolvedChain
resolveChain(const Index &ix, const ClassInfo *self,
             const std::map<std::string, std::string> &locals,
             const std::vector<Seg> &segs, bool trailingAssign)
{
    ResolvedChain out;
    if (segs.size() < 2 || !self)
        return out;
    out.via = segs[0].name;
    out.pos = segs[0].pos;

    const auto &sf = ix.fieldLookup.at(self->name);
    const auto &sm = ix.methodLookup.at(self->name);

    const ClassInfo *cur = nullptr;
    std::size_t idx = 0;
    bool baseIsSelfObject = false;

    if (segs[0].name == "this") {
        cur = self;
        baseIsSelfObject = true;
        idx = 1;
    } else {
        auto lt = locals.find(segs[0].name);
        if (lt != locals.end()) {
            cur = ix.cls(lt->second);
            idx = 1;
        } else if (auto ft = sf.find(segs[0].name); ft != sf.end()) {
            if (ft->second->type.empty())
                cur = nullptr;
            else
                cur = ix.cls(ft->second->type);
            idx = 1;
        } else if (auto mt = sm.find(segs[0].name);
                   mt != sm.end() && segs[0].isCall) {
            if (mt->second->returnsType.empty()) {
                // A self accessor into non-indexed internals: the
                // object is still `this`.
                cur = nullptr;
            } else {
                cur = ix.cls(mt->second->returnsType);
            }
            idx = 1;
            if (cur == nullptr || cur == self)
                baseIsSelfObject = true;
            if (cur != nullptr && cur != self &&
                !(cur->component || cur->interface))
                baseIsSelfObject = true; // e.g. stats() -> CabStats
        } else {
            return out; // unresolvable base
        }
    }
    if (!cur)
        return out;

    const MethodInfo *leaveMethod = nullptr;
    const FieldInfo *leaveField = nullptr;
    bool left = false; ///< Past the component boundary.
    std::size_t leaveIdx = 0;

    // If the base accessor already landed on a non-node aggregate of
    // self (stats() -> CabStats), treat self as the pending target.
    if (baseIsSelfObject && cur != self &&
        !(cur->component || cur->interface)) {
        out.target = self;
        out.member = segs[0].name;
        left = true;
        leaveIdx = 0;
        auto mt = sm.find(segs[0].name);
        if (mt != sm.end())
            leaveMethod = mt->second;
    }

    for (; idx < segs.size(); ++idx) {
        const Seg &s = segs[idx];
        auto fl = ix.fieldLookup.find(cur->name);
        auto ml = ix.methodLookup.find(cur->name);
        const FieldInfo *f = nullptr;
        const MethodInfo *m = nullptr;
        if (fl != ix.fieldLookup.end()) {
            auto it = fl->second.find(s.name);
            if (it != fl->second.end())
                f = it->second;
        }
        if (ml != ix.methodLookup.end()) {
            auto it = ml->second.find(s.name);
            if (it != ml->second.end())
                m = it->second;
        }

        const ClassInfo *next = nullptr;
        if (s.isCall && m)
            next = m->returnsType.empty() ? nullptr
                                          : ix.cls(m->returnsType);
        else if (!s.isCall && f)
            next = f->type.empty() ? nullptr : ix.cls(f->type);
        else if (!m && !f) {
            // Unknown member.  Past the boundary: stay conservative
            // (a call on foreign internals counts as mutation).
            if (left) {
                if (s.isCall)
                    out.mutation = true;
                break;
            }
            return {}; // unknown member on a node: no edge
        }

        if (!left) {
            if (next && (next->component || next->interface)) {
                cur = next; // pure traversal between nodes
                baseIsSelfObject = baseIsSelfObject && next == self;
                continue;
            }
            // Leaving the component: this is the accessed member.
            out.target = cur;
            out.member = s.name;
            left = true;
            leaveIdx = idx;
            leaveMethod = s.isCall ? m : nullptr;
            leaveField = s.isCall ? nullptr : f;
            if (!next)
                break;
            cur = next;
            continue;
        }
        // Past the boundary: keep resolving for the mutation verdict.
        if (s.isCall && m && !m->isConst)
            out.mutation = true;
        if (!next)
            break;
        cur = next;
    }

    if (!out.target)
        return out;
    out.implicitSelf = baseIsSelfObject && out.target == self;

    // Mutation verdict at the boundary member.
    if (leaveMethod) {
        if (!leaveMethod->isConst)
            out.mutation = true;
    } else if (leaveField) {
        if (leaveIdx + 1 >= segs.size()) {
            if (trailingAssign)
                out.mutation = true;
        }
        // Deeper mutations were detected in the loop above.
    }
    if (trailingAssign && leaveIdx + 1 <= segs.size() - 1)
        out.mutation = true;
    if (trailingAssign && leaveIdx + 1 >= segs.size() && leaveField)
        out.mutation = true;

    return out;
}

bool
allowlisted(const Index &ix, const GraphOptions &opts,
            const ClassInfo *target, const std::string &member)
{
    std::set<std::string> names;
    std::function<void(const std::string &)> add =
        [&](const std::string &n) {
            if (!names.insert(n).second)
                return;
            const ClassInfo *c = ix.cls(n);
            if (c)
                for (const auto &b : c->bases)
                    add(b);
        };
    add(target->name);
    for (const auto &[cls, m] : opts.mediatedAllowlist)
        if (m == member && names.count(cls))
            return true;
    return false;
}

/** Collect `Type name` local/parameter declarations in a range. */
void
collectLocals(const Index &ix, const std::string &code,
              std::size_t b, std::size_t e,
              std::map<std::string, std::string> &locals)
{
    if (b >= e)
        return;
    std::string text = code.substr(b, e - b);
    static const std::regex decl(
        R"(\b((?:\w+::)*[A-Z]\w*)(?:<[^<>;]*>)?\s*(?:[&*]\s*)?)"
        R"(([a-z_]\w*)\b)");
    for (auto it = std::sregex_iterator(text.begin(), text.end(),
                                        decl);
         it != std::sregex_iterator(); ++it) {
        std::string type = bareName((*it)[1].str());
        if (ix.classes.count(type))
            locals.emplace((*it)[2].str(), type);
    }
}

/** Scan one body: edges, D6, D8. */
void
scanBody(const Index &ix, const GraphOptions &opts, const Body &body,
         std::vector<AccessEdge> &edges,
         std::vector<Finding> &findings)
{
    const PreparedFile &pf = ix.files[body.fileIdx];
    const std::string &code = pf.prep.code;
    const ClassInfo *self = ix.cls(body.cls);
    if (!self || !(self->component || self->interface))
        return;

    std::map<std::string, std::string> locals;
    collectLocals(ix, code, body.paramsBegin, body.paramsEnd, locals);
    collectLocals(ix, code, body.begin, body.end, locals);

    auto recordEdge = [&](const ResolvedChain &rc) {
        if (!rc.target || rc.implicitSelf)
            return;
        if (!(rc.target->component || rc.target->interface))
            return;
        int line = lineOf(code, rc.pos);
        AccessEdge e;
        e.from = self->name;
        e.to = rc.target->name;
        e.via = rc.via;
        e.member = rc.member;
        e.mutation = rc.mutation;
        e.file = pf.path;
        e.line = line;
        auto owns = [&](const std::string &a, const std::string &b) {
            auto it = ix.owns.find(a);
            return it != ix.owns.end() && it->second.count(b) > 0;
        };
        if (allowlisted(ix, opts, rc.target, rc.member)) {
            e.kind = "mediated";
        } else if (owns(e.from, e.to) || owns(e.to, e.from)) {
            e.kind = "owned";
        } else if (!e.mutation) {
            e.kind = "read";
        } else if (self->role == rc.target->role) {
            e.kind = "co-located";
        } else if (pf.sup.covers("D6", line)) {
            e.kind = "mediated";
            e.annotated = true;
        } else {
            e.kind = "direct-mutation";
            findings.push_back(
                {"D6", pf.path, line,
                 "direct cross-component mutation " + e.from +
                     " -> " + e.to + "::" + e.member + " (" +
                     self->role + " -> " + rc.target->role +
                     ") bypasses the event queue; route it through "
                     "a mediated surface or annotate "
                     "'nectar-lint: mediated-ok <why>'"});
        }
        edges.push_back(std::move(e));
    };

    // ----- Access chains -------------------------------------------
    for (std::size_t i = body.begin; i < body.end; ++i) {
        if (!identChar(code[i]) ||
            std::isdigit(static_cast<unsigned char>(code[i])))
            continue;
        if (i > 0 && identChar(code[i - 1])) {
            while (i < body.end && identChar(code[i]))
                ++i;
            continue;
        }
        // Skip mid-chain segments and qualified names; note unary
        // address-of (the access itself mutates nothing — retaining
        // the pointer is D8's business).
        bool addrOf = false;
        std::size_t pv = prevNonWs(code, i);
        if (pv != std::string::npos) {
            char pc = code[pv];
            if (pc == '.' || pc == ':' ||
                (pc == '>' && pv > 0 && code[pv - 1] == '-')) {
                while (i < body.end && identChar(code[i]))
                    ++i;
                continue;
            }
            if (pc == '&' && (pv == 0 || (!identChar(code[pv - 1]) &&
                                          code[pv - 1] != ')')))
                addrOf = true;
        }
        std::size_t end = i;
        std::vector<Seg> segs = parseChain(code, i, body.end, end);
        std::size_t nameEnd = i;
        while (nameEnd < body.end && identChar(code[nameEnd]))
            ++nameEnd;
        if (segs.size() >= 2) {
            ResolvedChain rc =
                resolveChain(ix, self, locals, segs,
                             assignFollows(code, end));
            if (addrOf)
                rc.mutation = false;
            recordEdge(rc);
        }
        i = nameEnd - 1;
    }

    // ----- D8: foreign-internals pointers stored in fields ---------
    auto checkForeignRef = [&](const std::string &lhs,
                               std::size_t chainPos) {
        const auto &sf = ix.fieldLookup.at(self->name);
        if (sf.find(lhs) == sf.end())
            return; // not stored in a field: a transient is fine
        std::size_t end = chainPos;
        std::vector<Seg> segs =
            parseChain(code, chainPos, body.end, end);
        if (segs.size() < 2)
            return; // whole-component wiring (tx = &link)
        ResolvedChain rc =
            resolveChain(ix, self, locals, segs, false);
        if (!rc.target || rc.implicitSelf)
            return;
        if (!(rc.target->component || rc.target->interface))
            return;
        int line = lineOf(code, chainPos);
        AccessEdge e;
        e.from = self->name;
        e.to = rc.target->name;
        e.via = rc.via;
        e.member = rc.member;
        e.mutation = true;
        e.file = pf.path;
        e.line = line;
        e.kind = "foreign-ref";
        if (pf.sup.covers("D8", line)) {
            e.annotated = true;
        } else {
            findings.push_back(
                {"D8", pf.path, line,
                 "field '" + lhs + "' stores a reference into " +
                     e.to + "::" + e.member +
                     " — another component's internals retained "
                     "across ticks; hold the component itself and "
                     "access it per tick, or annotate "
                     "'nectar-lint: foreign-ref-ok <why>'"});
        }
        edges.push_back(std::move(e));
    };

    // `field = &chain;` inside the body.
    for (std::size_t i = body.begin; i < body.end; ++i) {
        if (code[i] != '=')
            continue;
        char p = i > 0 ? code[i - 1] : '\0';
        char n = i + 1 < body.end ? code[i + 1] : '\0';
        if (p == '=' || p == '!' || p == '<' || p == '>' ||
            p == '+' || p == '-' || p == '*' || p == '/' ||
            p == '&' || p == '|' || p == '^' || n == '=')
            continue;
        std::size_t amp = skipWs(code, i + 1);
        if (amp >= body.end || code[amp] != '&')
            continue;
        std::size_t chain = skipWs(code, amp + 1);
        if (chain >= body.end || !identChar(code[chain]))
            continue;
        std::size_t pv = prevNonWs(code, i);
        if (pv == std::string::npos || !identChar(code[pv]))
            continue;
        std::string lhs = identEndingAt(code, pv);
        // `this->field = &...`
        checkForeignRef(lhs, chain);
    }
    // `field(&chain)` / `field{&chain}` in the ctor init list.
    if (body.initBegin < body.initEnd) {
        std::size_t i = body.initBegin;
        while (i < body.initEnd) {
            i = skipWs(code, i);
            if (i >= body.initEnd || !identChar(code[i]))
                break;
            std::string name = identAt(code, i);
            std::size_t k = skipWs(code, i + name.size());
            if (k < body.initEnd &&
                (code[k] == '(' || code[k] == '{')) {
                std::size_t inner = skipWs(code, k + 1);
                if (inner < body.initEnd && code[inner] == '&') {
                    std::size_t chain = skipWs(code, inner + 1);
                    if (chain < body.initEnd &&
                        identChar(code[chain]))
                        checkForeignRef(name, chain);
                }
                k = skipBracket(code, k);
            }
            k = skipWs(code, k);
            if (k < body.initEnd && code[k] == ',')
                i = k + 1;
            else
                break;
        }
    }
}

// ====================================================================
// JSON serialization.
// ====================================================================

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default: out.push_back(c);
        }
    }
    return out;
}

void
writeEdge(std::ostringstream &os, const AccessEdge &e,
          const char *indent)
{
    os << indent << "{\"from\": \"" << e.from << "\", \"to\": \""
       << e.to << "\", \"kind\": \"" << e.kind
       << "\", \"mutation\": " << (e.mutation ? "true" : "false")
       << ", \"annotated\": " << (e.annotated ? "true" : "false")
       << ", \"via\": \"" << jsonEscape(e.via)
       << "\", \"member\": \"" << jsonEscape(e.member)
       << "\", \"file\": \"" << jsonEscape(e.file)
       << "\", \"line\": " << e.line << "}";
}

} // namespace

// ====================================================================
// Public interface.
// ====================================================================

GraphResult
analyzeGraph(const std::vector<SourceFile> &files,
             const GraphOptions &opts)
{
    Index ix;
    std::vector<SourceFile> sorted = files;
    std::sort(sorted.begin(), sorted.end(),
              [](const SourceFile &a, const SourceFile &b) {
                  return a.path < b.path;
              });
    for (const auto &f : sorted) {
        PreparedFile pf;
        pf.path = f.path;
        pf.prep = prepare(f.text);
        std::vector<Finding> scratch; // A1s belong to the file pass
        pf.sup = parseAnnotations(pf.prep, f.path, scratch);
        ix.files.push_back(std::move(pf));
    }
    for (std::size_t i = 0; i < ix.files.size(); ++i)
        indexFile(ix, i);
    finalizeIndex(ix, opts);
    for (std::size_t i = 0; i < ix.files.size(); ++i)
        indexOutOfLine(ix, i);

    GraphResult out;
    std::vector<AccessEdge> edges;
    for (const auto &b : ix.bodies)
        scanBody(ix, opts, b, edges, out.findings);

    // Deduplicate and sort edges and findings deterministically.
    auto edgeKey = [](const AccessEdge &e) {
        return e.file + "\0" + std::to_string(e.line) + "\0" +
               e.from + "\0" + e.to + "\0" + e.member + "\0" + e.kind;
    };
    std::sort(edges.begin(), edges.end(),
              [&](const AccessEdge &a, const AccessEdge &b) {
                  return edgeKey(a) < edgeKey(b);
              });
    edges.erase(std::unique(edges.begin(), edges.end(),
                            [&](const AccessEdge &a,
                                const AccessEdge &b) {
                                return edgeKey(a) == edgeKey(b);
                            }),
                edges.end());
    out.edges = std::move(edges);

    std::sort(out.findings.begin(), out.findings.end(),
              [](const Finding &a, const Finding &b) {
                  return std::tie(a.file, a.line, a.rule) <
                         std::tie(b.file, b.line, b.rule);
              });
    out.findings.erase(
        std::unique(out.findings.begin(), out.findings.end(),
                    [](const Finding &a, const Finding &b) {
                        return a.file == b.file &&
                               a.line == b.line && a.rule == b.rule;
                    }),
        out.findings.end());

    for (const auto &[name, ci] : ix.classes)
        if (ci.component || ci.interface)
            out.components.emplace(name, ci);
    return out;
}

std::string
graphJson(const GraphResult &g, const GraphOptions &opts,
          const TopoSummary *topo)
{
    std::ostringstream os;
    os << "{\n  \"version\": 1,\n  \"components\": [\n";
    bool first = true;
    for (const auto &[name, ci] : g.components) {
        if (!first)
            os << ",\n";
        first = false;
        os << "    {\"name\": \"" << name << "\", \"qualified\": \""
           << jsonEscape(ci.qualified) << "\", \"role\": \""
           << ci.role << "\", \"interface\": "
           << (ci.interface ? "true" : "false") << ", \"file\": \""
           << jsonEscape(ci.file) << "\", \"line\": " << ci.line
           << ", \"bases\": [";
        for (std::size_t i = 0; i < ci.bases.size(); ++i)
            os << (i ? ", " : "") << '"' << ci.bases[i] << '"';
        os << "], \"mutatingPublicMethods\": [";
        std::set<std::string> muts;
        for (const auto &m : ci.methods)
            if (m.isPublic && !m.isConst)
                muts.insert(m.name);
        bool f2 = true;
        for (const auto &m : muts) {
            os << (f2 ? "" : ", ") << '"' << m << '"';
            f2 = false;
        }
        os << "]}";
    }
    os << "\n  ],\n  \"edges\": [\n";
    first = true;
    for (const auto &e : g.edges) {
        if (!first)
            os << ",\n";
        first = false;
        writeEdge(os, e, "    ");
    }
    std::size_t direct = 0, foreign = 0, mut = 0;
    for (const auto &e : g.edges) {
        if (e.mutation)
            ++mut;
        if (e.kind == "direct-mutation")
            ++direct;
        if (e.kind == "foreign-ref" && !e.annotated)
            ++foreign;
    }
    os << "\n  ],\n  \"summary\": {\"components\": "
       << g.components.size() << ", \"edges\": " << g.edges.size()
       << ", \"mutationEdges\": " << mut
       << ", \"directMutationEdges\": " << direct
       << ", \"foreignRefEdges\": " << foreign << "}";

    if (topo) {
        os << ",\n  \"topology\": {\n    \"name\": \""
           << jsonEscape(topo->name) << "\",\n    \"clusters\": [\n";
        for (std::size_t h = 0; h < topo->hubs.size(); ++h) {
            if (h)
                os << ",\n";
            os << "      {\"id\": " << h << ", \"hub\": \""
               << jsonEscape(topo->hubs[h]) << "\", \"cabs\": [";
            bool f3 = true;
            for (const auto &[cab, hub] : topo->cabs)
                if (hub == static_cast<int>(h)) {
                    os << (f3 ? "" : ", ") << '"' << jsonEscape(cab)
                       << '"';
                    f3 = false;
                }
            os << "]}";
        }
        os << "\n    ],\n    \"trunks\": [";
        for (std::size_t t = 0; t < topo->trunks.size(); ++t)
            os << (t ? ", " : "") << "[" << topo->trunks[t].first
               << ", " << topo->trunks[t].second << "]";
        os << "],\n    \"crossClusterDirectEdges\": [";
        first = true;
        for (const auto &e : g.edges)
            if (e.kind == "direct-mutation") {
                os << (first ? "\n" : ",\n");
                first = false;
                writeEdge(os, e, "      ");
            }
        if (!first)
            os << "\n    ";
        os << "]\n  }";
    }
    (void)opts;
    os << "\n}\n";
    return os.str();
}

} // namespace nectar::lint
