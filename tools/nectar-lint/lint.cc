#include "lint.hh"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <stdexcept>

#include "source.hh"

namespace nectar::lint {

namespace {

// --------------------------------------------------------------------
// D1 — wall-clock time and unseeded randomness.
// --------------------------------------------------------------------

void
scanWallClock(const Prepared &p, const std::string &file,
              std::vector<Finding> &out)
{
    // The time(nullptr) family includes taking the time through an
    // out-parameter (time(&t)) and the broken-down-time converters,
    // all of which smuggle wall-clock state into the simulation.
    static const std::regex pat(
        R"(\brand\s*\(|\bsrand\s*\(|\brandom_device\b|\bsystem_clock\b)"
        R"(|\bsteady_clock\b|\bhigh_resolution_clock\b)"
        R"(|\bgettimeofday\b|\bclock_gettime\b)"
        R"(|\btime\s*\(\s*(nullptr|NULL|0|&\s*\w+)\s*\))"
        R"(|\blocaltime(_r)?\s*\(|\bgmtime(_r)?\s*\(|\bmktime\s*\()"
        R"(|\bctime(_r)?\s*\(|\basctime(_r)?\s*\(|\btimespec_get\s*\()"
        R"(|\bclock\s*\(\s*\)|\bsrandom\s*\(|\brandom\s*\(\s*\))"
        R"(|\bgetrandom\s*\(|\bgetentropy\s*\(|\barc4random\w*\s*\()");
    auto begin = std::sregex_iterator(p.code.begin(), p.code.end(),
                                      pat);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
        std::size_t pos = static_cast<std::size_t>(it->position());
        out.push_back(
            {"D1", file, lineOf(p.code, pos),
             "wall-clock or unseeded randomness '" +
                 it->str().substr(0, it->str().find('(')) +
                 "'; draw from a seeded sim::Random instead"});
    }
}

// --------------------------------------------------------------------
// D2 — iteration over unordered containers.
// --------------------------------------------------------------------

void
scanUnorderedIteration(const Prepared &p, const std::string &file,
                       std::vector<Finding> &out)
{
    const std::string &code = p.code;

    // Pass 1: names declared with an unordered container type.
    std::set<std::string> names;
    static const std::regex decl(R"(\bunordered_(map|set)\s*<)");
    for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                        decl);
         it != std::sregex_iterator(); ++it) {
        std::size_t open =
            static_cast<std::size_t>(it->position()) +
            it->str().size() - 1;
        std::size_t after = matchBracket(code, open);
        if (after == std::string::npos)
            continue;
        std::size_t i = skipWs(code, after);
        if (i >= code.size() || !identChar(code[i]) ||
            std::isdigit(static_cast<unsigned char>(code[i])))
            continue;
        std::size_t j = i;
        while (j < code.size() && identChar(code[j]))
            ++j;
        std::size_t k = skipWs(code, j);
        if (k < code.size() && code[k] == '(')
            continue; // a function returning the container
        names.insert(code.substr(i, j - i));
    }

    auto report = [&](std::size_t pos, const std::string &what) {
        out.push_back(
            {"D2", file, lineOf(code, pos),
             "iteration over unordered container " + what +
                 ": hash order is unspecified and diverges runs; "
                 "use an ordered container, sort first, or annotate "
                 "'nectar-lint: ordered-ok <why>'"});
    };

    // Pass 2: range-for whose range names one of them (or is itself
    // an unordered container expression).
    static const std::regex rfor(R"(\bfor\s*\()");
    for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                        rfor);
         it != std::sregex_iterator(); ++it) {
        std::size_t open =
            static_cast<std::size_t>(it->position()) +
            it->str().size() - 1;
        std::size_t close = matchBracket(code, open);
        if (close == std::string::npos)
            continue;
        std::string head = code.substr(open + 1, close - open - 2);
        // Top-level ':' that is not part of '::'.
        std::size_t colon = std::string::npos;
        int depth = 0;
        for (std::size_t i = 0; i < head.size(); ++i) {
            char c = head[i];
            if (c == '(' || c == '[' || c == '{')
                ++depth;
            else if (c == ')' || c == ']' || c == '}')
                --depth;
            else if (c == ':' && depth == 0) {
                if ((i + 1 < head.size() && head[i + 1] == ':') ||
                    (i > 0 && head[i - 1] == ':')) {
                    continue;
                }
                colon = i;
                break;
            }
        }
        if (colon == std::string::npos)
            continue;
        std::string range = head.substr(colon + 1);
        bool hit = range.find("unordered_") != std::string::npos;
        for (const auto &n : names) {
            if (hit)
                break;
            std::regex word("\\b" + n + "\\b");
            if (std::regex_search(range, word))
                hit = true;
        }
        if (hit)
            report(open + 1 + colon, "in range-for");
    }

    // Pass 3: explicit iterator walks: name.begin() / name->begin().
    for (const auto &n : names) {
        std::regex iter("\\b" + n +
                        R"(\s*(\.|->)\s*c?(begin|end)\s*\()");
        for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                            iter);
             it != std::sregex_iterator(); ++it) {
            report(static_cast<std::size_t>(it->position()),
                   "'" + n + "' via begin()/end()");
        }
    }
}

// --------------------------------------------------------------------
// D3 — raw payload copies on the packet path.
// --------------------------------------------------------------------

void
scanPacketCopies(const Prepared &p, const std::string &file,
                 std::vector<Finding> &out)
{
    const std::string &code = p.code;

    static const std::regex cp(R"(\bmemcpy\s*\(|\bnew\b[^;(){}=]*\[)");
    for (auto it = std::sregex_iterator(code.begin(), code.end(), cp);
         it != std::sregex_iterator(); ++it) {
        std::size_t pos = static_cast<std::size_t>(it->position());
        bool isNew = code.compare(pos, 3, "new") == 0;
        out.push_back(
            {"D3", file, lineOf(code, pos),
             std::string(isNew ? "array new" : "memcpy") +
                 " on the packet path; payload bytes must flow "
                 "through sim::Buffer/PacketView (copies are counted "
                 "via sim::copyStats), or annotate "
                 "'nectar-lint: copy-ok <why>'"});
    }

    // Owning std::vector<uint8_t> objects (declarations, temporaries,
    // return types).  References, pointers and nested template
    // arguments are fine: they do not own a payload copy.
    static const std::regex vec(R"(\bvector\s*<)");
    for (auto it = std::sregex_iterator(code.begin(), code.end(), vec);
         it != std::sregex_iterator(); ++it) {
        std::size_t open =
            static_cast<std::size_t>(it->position()) +
            it->str().size() - 1;
        std::size_t after = matchBracket(code, open);
        if (after == std::string::npos)
            continue;
        std::string inner =
            code.substr(open + 1, after - open - 2);
        inner.erase(std::remove_if(inner.begin(), inner.end(),
                                   [](char c) {
                                       return std::isspace(
                                           static_cast<unsigned char>(
                                               c));
                                   }),
                    inner.end());
        if (inner != "std::uint8_t" && inner != "uint8_t")
            continue;
        std::size_t i = skipWs(code, after);
        if (i >= code.size())
            continue;
        char c = code[i];
        if (c == '&' || c == '*' || c == '>' || c == ',' ||
            c == ')' || c == ';')
            continue;
        out.push_back(
            {"D3", file,
             lineOf(code, static_cast<std::size_t>(it->position())),
             "owning std::vector<uint8_t> on the packet path; hold a "
             "sim::Buffer/PacketView instead, or annotate "
             "'nectar-lint: copy-ok <why>'"});
    }
}

// --------------------------------------------------------------------
// D4 / D5 — schedule() call-site rules.
// --------------------------------------------------------------------

bool
lambdaIntroAt(const std::string &code, std::size_t pos,
              std::size_t extentBegin)
{
    std::size_t prev = prevNonWs(code, pos);
    if (prev == std::string::npos || prev < extentBegin)
        return true;
    char c = code[prev];
    // After an identifier, ')' or ']', a '[' is indexing.
    return !(identChar(c) || c == ')' || c == ']');
}

void
scanScheduleSites(const Prepared &p, const std::string &file,
                  std::vector<Finding> &out)
{
    const std::string &code = p.code;
    static const std::regex call(
        R"(\b(schedule|scheduleIn|spawn)\s*\()");
    static const std::regex bareInt(
        R"(^(0[xX][0-9a-fA-F']+|[0-9][0-9']*)([uUlL]*)$)");

    for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                        call);
         it != std::sregex_iterator(); ++it) {
        const std::string callee = (*it)[1].str();
        // spawn() defers its argument like schedule() does (the
        // coroutine frame runs across later ticks), so D4's capture
        // rule applies — but its argument is a Task, not a tick, so
        // D5's bare-integer rule does not.
        const bool isSpawn = callee == "spawn";
        std::size_t open =
            static_cast<std::size_t>(it->position()) +
            it->str().size() - 1;
        std::size_t close = matchBracket(code, open);
        if (close == std::string::npos)
            continue;

        // D5: first top-level argument is a bare integer literal.
        int depth = 0;
        std::size_t argEnd = close - 1;
        for (std::size_t i = open + 1; i < close - 1; ++i) {
            char c = code[i];
            if (c == '(' || c == '[' || c == '{' || c == '<')
                ++depth;
            else if (c == ')' || c == ']' || c == '}' || c == '>')
                --depth;
            else if (c == ',' && depth == 0) {
                argEnd = i;
                break;
            }
        }
        std::string arg = code.substr(open + 1, argEnd - open - 1);
        std::string trimmed;
        for (char c : arg)
            if (!std::isspace(static_cast<unsigned char>(c)))
                trimmed.push_back(c);
        if (!isSpawn && std::regex_match(trimmed, bareInt)) {
            out.push_back(
                {"D5", file, lineOf(code, skipWs(code, open + 1)),
                 "bare integer time literal '" + trimmed +
                     "' at a schedule site; use named sim::ticks "
                     "constants (e.g. 5 * ticks::us, "
                     "ticks::immediate)"});
        }

        // D4: by-reference capture in a lambda literal inside the
        // argument list.
        for (std::size_t i = open + 1; i < close - 1; ++i) {
            if (code[i] != '[')
                continue;
            std::size_t end = matchBracket(code, i);
            if (end == std::string::npos || end > close)
                break;
            if (!lambdaIntroAt(code, i, open + 1)) {
                i = end - 1;
                continue;
            }
            // A lambda intro is followed by '(' or '{' (or
            // specifiers); require one within a few tokens.
            std::size_t k = skipWs(code, end);
            bool isLambda =
                k < code.size() &&
                (code[k] == '(' || code[k] == '{' ||
                 code.compare(k, 7, "mutable") == 0 ||
                 code.compare(k, 9, "noexcept") == 0 ||
                 code.compare(k, 2, "->") == 0);
            std::string captures = code.substr(i + 1, end - i - 2);
            if (isLambda &&
                captures.find('&') != std::string::npos) {
                // Anchor at the call, not the lambda: multi-line
                // calls put the lambda lines below the site the
                // annotation naturally precedes.
                out.push_back(
                    {"D4", file,
                     lineOf(code,
                            static_cast<std::size_t>(it->position())),
                     "by-reference lambda capture passed to " +
                         callee +
                         "(): the deferred " +
                         (isSpawn ? "coroutine" : "event") +
                         " may outlive the captured frame; capture "
                         "by value or annotate "
                         "'nectar-lint: capture-ok <why>'"});
            }
            i = end - 1;
        }
    }
}

// --------------------------------------------------------------------
// D7 — mutable global / static state.
//
// A variable that outlives every component instance is invisible to
// any partitioning of the component graph: two thread partitions
// would share it without either one owning it.  The scanner tracks
// brace scopes lexically (namespace, class, function/block,
// initializer) and flags mutable variables introduced by `static`,
// namespace-scope `inline`, or `extern` without a const qualifier.
// const/constexpr state and thread_local variables pass: the former
// cannot be written, the latter is per-thread by definition.
// --------------------------------------------------------------------

enum class ScopeKind { ns, cls, fn, init };

/** Classify the '{' at @p open by looking back at its head. */
ScopeKind
classifyBrace(const std::string &code, std::size_t open)
{
    std::size_t j = prevNonWs(code, open);
    if (j == std::string::npos)
        return ScopeKind::init;
    char c = code[j];
    if (c == ')')
        return ScopeKind::fn; // function body or control statement
    if (c == '=' || c == ',' || c == '(' || c == '[' || c == '{')
        return ScopeKind::init; // braced initializer / init list
    // Scan the head back to the previous statement boundary.
    std::size_t stop = j;
    while (stop > 0 && code[stop - 1] != ';' && code[stop - 1] != '{' &&
           code[stop - 1] != '}')
        --stop;
    std::string head = code.substr(stop, open - stop);
    static const std::regex nsRe(R"(\b(namespace|extern)\b)");
    static const std::regex clsRe(R"(\b(class|struct|union|enum)\b)");
    static const std::regex blkRe(R"(\b(else|do|try|catch)\s*$)");
    if (std::regex_search(head, nsRe))
        return ScopeKind::ns;
    if (std::regex_search(head, clsRe))
        return ScopeKind::cls;
    if (std::regex_search(head, blkRe) || c == ':')
        return ScopeKind::fn;
    return ScopeKind::init;
}

void
scanGlobalState(const Prepared &p, const std::string &file,
                std::vector<Finding> &out)
{
    const std::string &code = p.code;

    // Every keyword that can introduce long-lived mutable state.
    static const std::regex kw(R"(\b(static|inline|extern)\b)");
    std::vector<std::pair<std::size_t, std::string>> hits;
    for (auto it = std::sregex_iterator(code.begin(), code.end(), kw);
         it != std::sregex_iterator(); ++it)
        hits.emplace_back(static_cast<std::size_t>(it->position()),
                          (*it)[1].str());

    if (hits.empty())
        return;

    // One pass over the code maintaining the scope stack; evaluate
    // each keyword hit in the scope it occurs in.
    std::vector<ScopeKind> stack; // empty = global scope (ns)
    std::size_t h = 0;
    for (std::size_t i = 0; i < code.size() && h < hits.size(); ++i) {
        if (code[i] == '{') {
            stack.push_back(classifyBrace(code, i));
        } else if (code[i] == '}') {
            if (!stack.empty())
                stack.pop_back();
        }
        if (i != hits[h].first)
            continue;
        std::size_t pos = hits[h].first;
        const std::string &word = hits[h].second;
        ++h;

        ScopeKind scope = stack.empty() ? ScopeKind::ns : stack.back();
        if (scope == ScopeKind::init)
            continue;
        // `inline`/`extern` only introduce variables at namespace
        // scope; `static` does so in any scope.
        if (word != "static" && scope != ScopeKind::ns)
            continue;

        // Parse the declaration: scan to the first of ';', '=', '{'
        // (variable) or '(' (function — unless it opens a
        // function-pointer declarator like `void (*f)() = nullptr`).
        std::size_t i2 = pos + word.size();
        bool isConst = false, notVar = false, sawDeclarator = false;
        bool decided = false, isVariable = false;
        static const std::regex stopWords(
            R"(\b(const|constexpr|consteval|constinit|thread_local)"
            R"(|using|typedef|friend|operator|template|namespace)"
            R"(|class|struct|union|enum|void|return)\b)");
        std::size_t declBegin = i2;
        while (i2 < code.size() && !decided) {
            char c = code[i2];
            if (c == ';' || c == '=' || c == '{') {
                decided = true;
                isVariable = true;
            } else if (c == '(') {
                std::size_t nx = skipWs(code, i2 + 1);
                if (nx < code.size() &&
                    (code[nx] == '*' || code[nx] == '&')) {
                    // Function-pointer declarator: skip it and keep
                    // scanning; the param-list paren that follows
                    // belongs to the variable's type.
                    sawDeclarator = true;
                    std::size_t end = matchBracket(code, i2);
                    if (end == std::string::npos)
                        break;
                    i2 = end;
                    continue;
                }
                if (sawDeclarator) {
                    // `(*f)(params)` — skip the parameter list.
                    std::size_t end = matchBracket(code, i2);
                    if (end == std::string::npos)
                        break;
                    i2 = end;
                    continue;
                }
                decided = true;
                isVariable = false; // plain function declaration
            } else if (c == '<') {
                std::size_t end = matchBracket(code, i2);
                if (end == std::string::npos)
                    break;
                i2 = end;
                continue;
            } else {
                ++i2;
                continue;
            }
        }
        if (!decided || !isVariable)
            continue;
        std::string decl = code.substr(declBegin, i2 - declBegin);
        for (auto wt = std::sregex_iterator(decl.begin(), decl.end(),
                                            stopWords);
             wt != std::sregex_iterator(); ++wt) {
            std::string w = wt->str();
            if (w == "const" || w == "constexpr" ||
                w == "consteval" || w == "constinit" ||
                w == "thread_local")
                isConst = true;
            else if (!sawDeclarator)
                // A function-pointer declarator is a variable no
                // matter what its return type spells.
                notVar = true;
        }
        if (isConst || notVar)
            continue;

        const char *where =
            scope == ScopeKind::ns  ? "namespace-scope"
            : scope == ScopeKind::cls ? "static-data-member"
                                      : "function-local static";
        out.push_back(
            {"D7", file, lineOf(code, pos),
             std::string("mutable ") + where +
                 " state: invisible to any component partitioning, "
                 "so thread partitions would share it unsynchronized; "
                 "make it const/thread_local, move it into a "
                 "component, or annotate "
                 "'nectar-lint: global-ok <why>'"});
    }
}

} // namespace

// --------------------------------------------------------------------
// Public interface.
// --------------------------------------------------------------------

const char *
ruleDescription(const std::string &rule)
{
    if (rule == "D1")
        return "no wall-clock time or unseeded randomness";
    if (rule == "D2")
        return "no iteration over unordered containers in sim code";
    if (rule == "D3")
        return "no raw payload copies on the packet path";
    if (rule == "D4")
        return "no by-reference lambda captures into "
               "schedule()/spawn()";
    if (rule == "D5")
        return "no bare integer time literals at schedule sites";
    if (rule == "D6")
        return "no direct cross-component state mutation off the "
               "mediated-call allowlist";
    if (rule == "D7")
        return "no mutable global/namespace-scope static state in "
               "simulation code";
    if (rule == "D8")
        return "no foreign references to another component's "
               "internals stored in fields";
    if (rule == "A1")
        return "annotations need a known tag and a justification";
    return "unknown rule";
}

std::vector<Finding>
lintSource(const std::string &path, const std::string &text,
           const Options &opts)
{
    Prepared p = prepare(text);

    std::vector<Finding> raw;
    Suppressions sup = parseAnnotations(p, path, raw);

    scanWallClock(p, path, raw);
    scanUnorderedIteration(p, path, raw);
    bool onPacketPath = false;
    for (const auto &dir : opts.packetPathDirs)
        if (path.find(dir) != std::string::npos)
            onPacketPath = true;
    if (onPacketPath)
        scanPacketCopies(p, path, raw);
    scanScheduleSites(p, path, raw);
    bool simState = false;
    for (const auto &dir : opts.globalStateDirs)
        if (path.find(dir) != std::string::npos)
            simState = true;
    if (simState)
        scanGlobalState(p, path, raw);

    std::vector<Finding> out;
    std::set<std::pair<std::string, int>> seen;
    std::stable_sort(raw.begin(), raw.end(),
                     [](const Finding &a, const Finding &b) {
                         return a.line < b.line;
                     });
    for (auto &f : raw) {
        if (f.rule != "A1" && sup.covers(f.rule, f.line))
            continue;
        if (!seen.insert({f.rule, f.line}).second)
            continue;
        out.push_back(std::move(f));
    }
    return out;
}

std::vector<Finding>
lintFile(const std::string &path, const Options &opts)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("nectar-lint: cannot read " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return lintSource(path, ss.str(), opts);
}

} // namespace nectar::lint
