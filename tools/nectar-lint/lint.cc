#include "lint.hh"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <stdexcept>

namespace nectar::lint {

namespace {

// --------------------------------------------------------------------
// Source preparation: blank comments and string/char literals so the
// rule scanners only ever see code, and collect comment text per line
// for the annotation grammar.
// --------------------------------------------------------------------

struct Prepared
{
    /** Source with comments and literal contents replaced by spaces;
     *  newlines preserved so positions map to the original lines. */
    std::string code;
    /** Comment text concatenated per 1-based line. */
    std::vector<std::string> comments; // [0] unused
    /** True when the line holds any non-comment, non-space code. */
    std::vector<bool> hasCode; // [0] unused
};

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

Prepared
prepare(const std::string &text)
{
    Prepared p;
    p.code.reserve(text.size());
    p.comments.emplace_back();
    p.comments.emplace_back();
    p.hasCode.push_back(false);
    p.hasCode.push_back(false);

    enum class St { code, lineComment, blockComment, str, chr, rawStr };
    St st = St::code;
    std::string rawDelim; // for R"delim( ... )delim"
    std::size_t line = 1;

    auto newline = [&] {
        p.code.push_back('\n');
        ++line;
        p.comments.emplace_back();
        p.hasCode.push_back(false);
    };

    for (std::size_t i = 0; i < text.size(); ++i) {
        char c = text[i];
        char next = i + 1 < text.size() ? text[i + 1] : '\0';
        switch (st) {
        case St::code:
            if (c == '/' && next == '/') {
                st = St::lineComment;
                p.code += "  ";
                ++i;
            } else if (c == '/' && next == '*') {
                st = St::blockComment;
                p.code += "  ";
                ++i;
            } else if (c == '"' && i >= 1 && text[i - 1] == 'R') {
                // Raw string literal: find the delimiter up to '('.
                std::size_t paren = text.find('(', i + 1);
                rawDelim = paren == std::string::npos
                               ? std::string()
                               : text.substr(i + 1, paren - i - 1);
                st = St::rawStr;
                p.code.push_back(' ');
            } else if (c == '"') {
                st = St::str;
                p.code.push_back(' ');
            } else if (c == '\'' && !(i >= 1 && identChar(text[i - 1]))) {
                // A char literal, not a digit separator (1'000'000).
                st = St::chr;
                p.code.push_back(' ');
            } else if (c == '\n') {
                newline();
            } else {
                if (!std::isspace(static_cast<unsigned char>(c)))
                    p.hasCode[line] = true;
                p.code.push_back(c);
            }
            break;
        case St::lineComment:
            if (c == '\n') {
                st = St::code;
                newline();
            } else {
                p.comments[line].push_back(c);
                p.code.push_back(' ');
            }
            break;
        case St::blockComment:
            if (c == '*' && next == '/') {
                st = St::code;
                p.code += "  ";
                ++i;
            } else if (c == '\n') {
                newline();
            } else {
                p.comments[line].push_back(c);
                p.code.push_back(' ');
            }
            break;
        case St::str:
            if (c == '\\' && next != '\0') {
                p.code += "  ";
                ++i;
                if (next == '\n')
                    newline();
            } else if (c == '"') {
                st = St::code;
                p.code.push_back(' ');
            } else if (c == '\n') {
                newline(); // unterminated; recover per line
                st = St::code;
            } else {
                p.code.push_back(' ');
            }
            break;
        case St::chr:
            if (c == '\\' && next != '\0') {
                p.code += "  ";
                ++i;
            } else if (c == '\'') {
                st = St::code;
                p.code.push_back(' ');
            } else if (c == '\n') {
                newline();
                st = St::code;
            } else {
                p.code.push_back(' ');
            }
            break;
        case St::rawStr: {
            std::string close = ")" + rawDelim + "\"";
            if (text.compare(i, close.size(), close) == 0) {
                for (std::size_t k = 0; k < close.size(); ++k)
                    p.code.push_back(' ');
                i += close.size() - 1;
                st = St::code;
            } else if (c == '\n') {
                newline();
            } else {
                p.code.push_back(' ');
            }
            break;
        }
        }
    }
    return p;
}

/** 1-based line number of position @p pos in @p code. */
int
lineOf(const std::string &code, std::size_t pos)
{
    return 1 + static_cast<int>(
                   std::count(code.begin(), code.begin() +
                              static_cast<std::ptrdiff_t>(pos), '\n'));
}

/** Skip whitespace (including newlines) forward from @p i. */
std::size_t
skipWs(const std::string &s, std::size_t i)
{
    while (i < s.size() &&
           std::isspace(static_cast<unsigned char>(s[i])))
        ++i;
    return i;
}

/** Previous non-whitespace position before @p i, or npos. */
std::size_t
prevNonWs(const std::string &s, std::size_t i)
{
    while (i > 0) {
        --i;
        if (!std::isspace(static_cast<unsigned char>(s[i])))
            return i;
    }
    return std::string::npos;
}

/**
 * Position one past the bracket that closes the one at @p open
 * (code[open] must be '(', '[', '{' or '<'), or npos when unmatched.
 * Operates on blanked code, so literals cannot confuse the count.
 */
std::size_t
matchBracket(const std::string &code, std::size_t open)
{
    char o = code[open];
    char c = o == '(' ? ')' : o == '[' ? ']' : o == '{' ? '}' : '>';
    int depth = 0;
    for (std::size_t i = open; i < code.size(); ++i) {
        if (code[i] == o) {
            ++depth;
        } else if (code[i] == c) {
            if (--depth == 0)
                return i + 1;
        }
    }
    return std::string::npos;
}

// --------------------------------------------------------------------
// Annotations.
// --------------------------------------------------------------------

const std::map<std::string, std::string> &
tagToRule()
{
    static const std::map<std::string, std::string> m = {
        {"wallclock-ok", "D1"}, {"ordered-ok", "D2"},
        {"copy-ok", "D3"},      {"capture-ok", "D4"},
        {"raw-ticks-ok", "D5"},
    };
    return m;
}

struct Suppressions
{
    /** rule -> exact lines waived. */
    std::map<std::string, std::set<int>> lines;
    /** rules waived for the whole file. */
    std::set<std::string> wholeFile;

    bool
    covers(const std::string &rule, int line) const
    {
        if (wholeFile.count(rule))
            return true;
        auto it = lines.find(rule);
        return it != lines.end() && it->second.count(line) > 0;
    }
};

Suppressions
parseAnnotations(const Prepared &p, const std::string &file,
                 std::vector<Finding> &out)
{
    Suppressions sup;
    static const std::regex ann(
        R"(nectar-lint(-file)?\s*:\s*([A-Za-z0-9-]+)\s*(.*))");
    for (std::size_t ln = 1; ln < p.comments.size(); ++ln) {
        const std::string &comment = p.comments[ln];
        auto begin = std::sregex_iterator(comment.begin(),
                                          comment.end(), ann);
        for (auto it = begin; it != std::sregex_iterator(); ++it) {
            bool fileWide = (*it)[1].matched;
            std::string tag = (*it)[2].str();
            std::string why = (*it)[3].str();
            auto rule = tagToRule().find(tag);
            if (rule == tagToRule().end()) {
                out.push_back({"A1", file, static_cast<int>(ln),
                               "unknown nectar-lint tag '" + tag +
                                   "'"});
                continue;
            }
            // Trim separators; a waiver must say *why*.
            while (!why.empty() &&
                   (std::isspace(static_cast<unsigned char>(
                        why.front())) ||
                    why.front() == '-' || why.front() == ':'))
                why.erase(why.begin());
            if (why.empty()) {
                out.push_back({"A1", file, static_cast<int>(ln),
                               "nectar-lint annotation '" + tag +
                                   "' needs a justification"});
                continue;
            }
            if (fileWide) {
                sup.wholeFile.insert(rule->second);
            } else {
                auto &s = sup.lines[rule->second];
                s.insert(static_cast<int>(ln));
                // A standalone annotation (possibly continued over
                // further comment lines) covers the next code line.
                std::size_t k = ln;
                while (k < p.hasCode.size() && !p.hasCode[k])
                    s.insert(static_cast<int>(++k));
            }
        }
    }
    return sup;
}

// --------------------------------------------------------------------
// D1 — wall-clock time and unseeded randomness.
// --------------------------------------------------------------------

void
scanWallClock(const Prepared &p, const std::string &file,
              std::vector<Finding> &out)
{
    static const std::regex pat(
        R"(\brand\s*\(|\bsrand\s*\(|\brandom_device\b|\bsystem_clock\b)"
        R"(|\bsteady_clock\b|\bhigh_resolution_clock\b)"
        R"(|\bgettimeofday\b|\bclock_gettime\b)"
        R"(|\btime\s*\(\s*(nullptr|NULL|0)\s*\))");
    auto begin = std::sregex_iterator(p.code.begin(), p.code.end(),
                                      pat);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
        std::size_t pos = static_cast<std::size_t>(it->position());
        out.push_back(
            {"D1", file, lineOf(p.code, pos),
             "wall-clock or unseeded randomness '" +
                 it->str().substr(0, it->str().find('(')) +
                 "'; draw from a seeded sim::Random instead"});
    }
}

// --------------------------------------------------------------------
// D2 — iteration over unordered containers.
// --------------------------------------------------------------------

void
scanUnorderedIteration(const Prepared &p, const std::string &file,
                       std::vector<Finding> &out)
{
    const std::string &code = p.code;

    // Pass 1: names declared with an unordered container type.
    std::set<std::string> names;
    static const std::regex decl(R"(\bunordered_(map|set)\s*<)");
    for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                        decl);
         it != std::sregex_iterator(); ++it) {
        std::size_t open =
            static_cast<std::size_t>(it->position()) +
            it->str().size() - 1;
        std::size_t after = matchBracket(code, open);
        if (after == std::string::npos)
            continue;
        std::size_t i = skipWs(code, after);
        if (i >= code.size() || !identChar(code[i]) ||
            std::isdigit(static_cast<unsigned char>(code[i])))
            continue;
        std::size_t j = i;
        while (j < code.size() && identChar(code[j]))
            ++j;
        std::size_t k = skipWs(code, j);
        if (k < code.size() && code[k] == '(')
            continue; // a function returning the container
        names.insert(code.substr(i, j - i));
    }

    auto report = [&](std::size_t pos, const std::string &what) {
        out.push_back(
            {"D2", file, lineOf(code, pos),
             "iteration over unordered container " + what +
                 ": hash order is unspecified and diverges runs; "
                 "use an ordered container, sort first, or annotate "
                 "'nectar-lint: ordered-ok <why>'"});
    };

    // Pass 2: range-for whose range names one of them (or is itself
    // an unordered container expression).
    static const std::regex rfor(R"(\bfor\s*\()");
    for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                        rfor);
         it != std::sregex_iterator(); ++it) {
        std::size_t open =
            static_cast<std::size_t>(it->position()) +
            it->str().size() - 1;
        std::size_t close = matchBracket(code, open);
        if (close == std::string::npos)
            continue;
        std::string head = code.substr(open + 1, close - open - 2);
        // Top-level ':' that is not part of '::'.
        std::size_t colon = std::string::npos;
        int depth = 0;
        for (std::size_t i = 0; i < head.size(); ++i) {
            char c = head[i];
            if (c == '(' || c == '[' || c == '{')
                ++depth;
            else if (c == ')' || c == ']' || c == '}')
                --depth;
            else if (c == ':' && depth == 0) {
                if ((i + 1 < head.size() && head[i + 1] == ':') ||
                    (i > 0 && head[i - 1] == ':')) {
                    continue;
                }
                colon = i;
                break;
            }
        }
        if (colon == std::string::npos)
            continue;
        std::string range = head.substr(colon + 1);
        bool hit = range.find("unordered_") != std::string::npos;
        for (const auto &n : names) {
            if (hit)
                break;
            std::regex word("\\b" + n + "\\b");
            if (std::regex_search(range, word))
                hit = true;
        }
        if (hit)
            report(open + 1 + colon, "in range-for");
    }

    // Pass 3: explicit iterator walks: name.begin() / name->begin().
    for (const auto &n : names) {
        std::regex iter("\\b" + n +
                        R"(\s*(\.|->)\s*c?(begin|end)\s*\()");
        for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                            iter);
             it != std::sregex_iterator(); ++it) {
            report(static_cast<std::size_t>(it->position()),
                   "'" + n + "' via begin()/end()");
        }
    }
}

// --------------------------------------------------------------------
// D3 — raw payload copies on the packet path.
// --------------------------------------------------------------------

void
scanPacketCopies(const Prepared &p, const std::string &file,
                 std::vector<Finding> &out)
{
    const std::string &code = p.code;

    static const std::regex cp(R"(\bmemcpy\s*\(|\bnew\b[^;(){}=]*\[)");
    for (auto it = std::sregex_iterator(code.begin(), code.end(), cp);
         it != std::sregex_iterator(); ++it) {
        std::size_t pos = static_cast<std::size_t>(it->position());
        bool isNew = code.compare(pos, 3, "new") == 0;
        out.push_back(
            {"D3", file, lineOf(code, pos),
             std::string(isNew ? "array new" : "memcpy") +
                 " on the packet path; payload bytes must flow "
                 "through sim::Buffer/PacketView (copies are counted "
                 "via sim::copyStats), or annotate "
                 "'nectar-lint: copy-ok <why>'"});
    }

    // Owning std::vector<uint8_t> objects (declarations, temporaries,
    // return types).  References, pointers and nested template
    // arguments are fine: they do not own a payload copy.
    static const std::regex vec(R"(\bvector\s*<)");
    for (auto it = std::sregex_iterator(code.begin(), code.end(), vec);
         it != std::sregex_iterator(); ++it) {
        std::size_t open =
            static_cast<std::size_t>(it->position()) +
            it->str().size() - 1;
        std::size_t after = matchBracket(code, open);
        if (after == std::string::npos)
            continue;
        std::string inner =
            code.substr(open + 1, after - open - 2);
        inner.erase(std::remove_if(inner.begin(), inner.end(),
                                   [](char c) {
                                       return std::isspace(
                                           static_cast<unsigned char>(
                                               c));
                                   }),
                    inner.end());
        if (inner != "std::uint8_t" && inner != "uint8_t")
            continue;
        std::size_t i = skipWs(code, after);
        if (i >= code.size())
            continue;
        char c = code[i];
        if (c == '&' || c == '*' || c == '>' || c == ',' ||
            c == ')' || c == ';')
            continue;
        out.push_back(
            {"D3", file,
             lineOf(code, static_cast<std::size_t>(it->position())),
             "owning std::vector<uint8_t> on the packet path; hold a "
             "sim::Buffer/PacketView instead, or annotate "
             "'nectar-lint: copy-ok <why>'"});
    }
}

// --------------------------------------------------------------------
// D4 / D5 — schedule() call-site rules.
// --------------------------------------------------------------------

bool
lambdaIntroAt(const std::string &code, std::size_t pos,
              std::size_t extentBegin)
{
    std::size_t prev = prevNonWs(code, pos);
    if (prev == std::string::npos || prev < extentBegin)
        return true;
    char c = code[prev];
    // After an identifier, ')' or ']', a '[' is indexing.
    return !(identChar(c) || c == ')' || c == ']');
}

void
scanScheduleSites(const Prepared &p, const std::string &file,
                  std::vector<Finding> &out)
{
    const std::string &code = p.code;
    static const std::regex call(
        R"(\b(schedule|scheduleIn|spawn)\s*\()");
    static const std::regex bareInt(
        R"(^(0[xX][0-9a-fA-F']+|[0-9][0-9']*)([uUlL]*)$)");

    for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                        call);
         it != std::sregex_iterator(); ++it) {
        const std::string callee = (*it)[1].str();
        // spawn() defers its argument like schedule() does (the
        // coroutine frame runs across later ticks), so D4's capture
        // rule applies — but its argument is a Task, not a tick, so
        // D5's bare-integer rule does not.
        const bool isSpawn = callee == "spawn";
        std::size_t open =
            static_cast<std::size_t>(it->position()) +
            it->str().size() - 1;
        std::size_t close = matchBracket(code, open);
        if (close == std::string::npos)
            continue;

        // D5: first top-level argument is a bare integer literal.
        int depth = 0;
        std::size_t argEnd = close - 1;
        for (std::size_t i = open + 1; i < close - 1; ++i) {
            char c = code[i];
            if (c == '(' || c == '[' || c == '{' || c == '<')
                ++depth;
            else if (c == ')' || c == ']' || c == '}' || c == '>')
                --depth;
            else if (c == ',' && depth == 0) {
                argEnd = i;
                break;
            }
        }
        std::string arg = code.substr(open + 1, argEnd - open - 1);
        std::string trimmed;
        for (char c : arg)
            if (!std::isspace(static_cast<unsigned char>(c)))
                trimmed.push_back(c);
        if (!isSpawn && std::regex_match(trimmed, bareInt)) {
            out.push_back(
                {"D5", file, lineOf(code, skipWs(code, open + 1)),
                 "bare integer time literal '" + trimmed +
                     "' at a schedule site; use named sim::ticks "
                     "constants (e.g. 5 * ticks::us, "
                     "ticks::immediate)"});
        }

        // D4: by-reference capture in a lambda literal inside the
        // argument list.
        for (std::size_t i = open + 1; i < close - 1; ++i) {
            if (code[i] != '[')
                continue;
            std::size_t end = matchBracket(code, i);
            if (end == std::string::npos || end > close)
                break;
            if (!lambdaIntroAt(code, i, open + 1)) {
                i = end - 1;
                continue;
            }
            // A lambda intro is followed by '(' or '{' (or
            // specifiers); require one within a few tokens.
            std::size_t k = skipWs(code, end);
            bool isLambda =
                k < code.size() &&
                (code[k] == '(' || code[k] == '{' ||
                 code.compare(k, 7, "mutable") == 0 ||
                 code.compare(k, 9, "noexcept") == 0 ||
                 code.compare(k, 2, "->") == 0);
            std::string captures = code.substr(i + 1, end - i - 2);
            if (isLambda &&
                captures.find('&') != std::string::npos) {
                // Anchor at the call, not the lambda: multi-line
                // calls put the lambda lines below the site the
                // annotation naturally precedes.
                out.push_back(
                    {"D4", file,
                     lineOf(code,
                            static_cast<std::size_t>(it->position())),
                     "by-reference lambda capture passed to " +
                         callee +
                         "(): the deferred " +
                         (isSpawn ? "coroutine" : "event") +
                         " may outlive the captured frame; capture "
                         "by value or annotate "
                         "'nectar-lint: capture-ok <why>'"});
            }
            i = end - 1;
        }
    }
}

} // namespace

// --------------------------------------------------------------------
// Public interface.
// --------------------------------------------------------------------

const char *
ruleDescription(const std::string &rule)
{
    if (rule == "D1")
        return "no wall-clock time or unseeded randomness";
    if (rule == "D2")
        return "no iteration over unordered containers in sim code";
    if (rule == "D3")
        return "no raw payload copies on the packet path";
    if (rule == "D4")
        return "no by-reference lambda captures into "
               "schedule()/spawn()";
    if (rule == "D5")
        return "no bare integer time literals at schedule sites";
    if (rule == "A1")
        return "annotations need a known tag and a justification";
    return "unknown rule";
}

std::vector<Finding>
lintSource(const std::string &path, const std::string &text,
           const Options &opts)
{
    Prepared p = prepare(text);

    std::vector<Finding> raw;
    Suppressions sup = parseAnnotations(p, path, raw);

    scanWallClock(p, path, raw);
    scanUnorderedIteration(p, path, raw);
    bool onPacketPath = false;
    for (const auto &dir : opts.packetPathDirs)
        if (path.find(dir) != std::string::npos)
            onPacketPath = true;
    if (onPacketPath)
        scanPacketCopies(p, path, raw);
    scanScheduleSites(p, path, raw);

    std::vector<Finding> out;
    std::set<std::pair<std::string, int>> seen;
    std::stable_sort(raw.begin(), raw.end(),
                     [](const Finding &a, const Finding &b) {
                         return a.line < b.line;
                     });
    for (auto &f : raw) {
        if (f.rule != "A1" && sup.covers(f.rule, f.line))
            continue;
        if (!seen.insert({f.rule, f.line}).second)
            continue;
        out.push_back(std::move(f));
    }
    return out;
}

std::vector<Finding>
lintFile(const std::string &path, const Options &opts)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("nectar-lint: cannot read " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return lintSource(path, ss.str(), opts);
}

} // namespace nectar::lint
