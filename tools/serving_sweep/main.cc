/**
 * @file
 * serving_sweep: standalone load-sweep driver for the serving
 * subsystem (src/serving), the command-line face of E19.
 *
 * Steps offered load up a geometric ladder on a chosen fabric, runs
 * the open-loop RPC workload at each rung, prints the per-step
 * latency/goodput table, locates the saturation knee, and writes the
 * whole curve to a JSON file (BENCH_serving.json schema).
 *
 * Usage:
 *   serving_sweep [--fabric single|FILE.topo] [--cabs N]
 *                 [--arrival poisson|bursty|hotspot|closed]
 *                 [--flows N] [--start RPS] [--growth X] [--steps N]
 *                 [--duration-ms MS] [--compute-us US] [--seed S]
 *                 [--out FILE.json]
 *
 * Exit status: 0 when the knee was located, 1 when the ladder never
 * saturated (raise --steps or --growth), 2 on usage errors.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "serving/serving.hh"
#include "serving/sweep.hh"

using namespace nectar;
using namespace nectar::serving;

namespace {

struct Options
{
    std::string fabric = "single";
    int cabs = 8;
    std::string arrival = "poisson";
    std::uint64_t flows = 1'000'000;
    double startRps = 50'000;
    double growth = 1.8;
    int steps = 6;
    double durationMs = 10;
    double computeUs = 20;
    std::uint64_t seed = 42;
    std::string out = "BENCH_serving.json";
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--fabric single|FILE.topo] [--cabs N]\n"
        "          [--arrival poisson|bursty|hotspot|closed]\n"
        "          [--flows N] [--start RPS] [--growth X] "
        "[--steps N]\n"
        "          [--duration-ms MS] [--compute-us US] [--seed S]\n"
        "          [--out FILE.json]\n",
        argv0);
    std::exit(2);
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (a == "--fabric")
            opt.fabric = value();
        else if (a == "--cabs")
            opt.cabs = std::atoi(value());
        else if (a == "--arrival")
            opt.arrival = value();
        else if (a == "--flows")
            opt.flows = std::strtoull(value(), nullptr, 10);
        else if (a == "--start")
            opt.startRps = std::atof(value());
        else if (a == "--growth")
            opt.growth = std::atof(value());
        else if (a == "--steps")
            opt.steps = std::atoi(value());
        else if (a == "--duration-ms")
            opt.durationMs = std::atof(value());
        else if (a == "--compute-us")
            opt.computeUs = std::atof(value());
        else if (a == "--seed")
            opt.seed = std::strtoull(value(), nullptr, 10);
        else if (a == "--out")
            opt.out = value();
        else
            usage(argv[0]);
    }
    if (opt.cabs < 2 || opt.steps < 1 || opt.growth <= 1.0)
        usage(argv[0]);
    return opt;
}

Arrival
arrivalOf(const std::string &name, const char *argv0)
{
    if (name == "poisson")
        return Arrival::poisson;
    if (name == "bursty")
        return Arrival::bursty;
    if (name == "hotspot")
        return Arrival::hotspot;
    if (name == "closed")
        return Arrival::closed;
    usage(argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);

    bool topoFile = opt.fabric.size() > 5 &&
                    opt.fabric.substr(opt.fabric.size() - 5) ==
                        ".topo";
    if (!topoFile && opt.fabric != "single")
        usage(argv[0]);

    SweepConfig cfg;
    cfg.fabric = topoFile ? opt.fabric : "single_hub";
    cfg.serving.arrival = arrivalOf(opt.arrival, argv[0]);
    cfg.serving.flows = opt.flows;
    cfg.serving.duration = static_cast<sim::Tick>(
        opt.durationMs * static_cast<double>(sim::ticks::ms));
    cfg.serving.serverCompute = static_cast<sim::Tick>(
        opt.computeUs * static_cast<double>(sim::ticks::us));
    cfg.serving.seed = opt.seed;
    cfg.startRps = opt.startRps;
    cfg.growth = opt.growth;
    cfg.steps = opt.steps;

    SystemBuilder build;
    if (topoFile) {
        build = [&opt](sim::EventQueue &eq) {
            return nectarine::NectarSystem::fromTopoFile(eq,
                                                         opt.fabric);
        };
    } else {
        build = [&opt](sim::EventQueue &eq) {
            return nectarine::NectarSystem::singleHub(eq, opt.cabs);
        };
    }

    SweepResult result = runSweep(build, cfg);

    std::printf("# serving sweep: fabric=%s arrival=%s flows=%llu "
                "seed=%llu\n",
                cfg.fabric.c_str(), opt.arrival.c_str(),
                static_cast<unsigned long long>(opt.flows),
                static_cast<unsigned long long>(opt.seed));
    std::printf("%12s %12s %10s %10s %10s %10s %8s\n", "offered_rps",
                "achieved", "p50_us", "p99_us", "p999_us", "MB/s",
                "shed");
    for (const SweepStep &st : result.steps) {
        const ServingReport &r = st.report;
        std::printf("%12.0f %12.0f %10.1f %10.1f %10.1f %10.2f "
                    "%8llu\n",
                    st.offeredRps, r.achievedRps, r.p50Ns / 1e3,
                    r.p99Ns / 1e3, r.p999Ns / 1e3, r.goodputMBs,
                    static_cast<unsigned long long>(r.shed));
    }
    if (result.kneeIndex >= 0)
        std::printf("saturation knee at step %d (%.0f rps offered)\n",
                    result.kneeIndex, result.kneeRps);
    else
        std::printf("no saturation knee found; raise --steps or "
                    "--growth\n");

    writeServingJson(opt.out, {result});
    std::printf("wrote %s\n", opt.out.c_str());
    return result.kneeIndex >= 0 ? 0 : 1;
}
